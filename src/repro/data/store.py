"""Zero-copy column storage: shared-memory segments behind columnar data.

:class:`repro.data.workers.ShardWorkerPool` historically shipped every
shard's columns to its worker process as one pickle — a full physical
copy per worker, and startup bytes proportional to the table size.
:class:`ColumnStore` removes the copy: it places a
:class:`~repro.data.columnar.ColumnarDatabase`'s flat buffers into
POSIX shared-memory segments (:mod:`multiprocessing.shared_memory`)
and renders the whole database as a **descriptor** — a ~100-byte plain
dict per column naming the segments and their dtypes/shapes.  Any
process (forked or spawned) rebuilds the database from the descriptor
with :meth:`ColumnStore.attach`: the arrays are read-only views over
the same physical pages, so

* pool startup ships descriptors, not arrays — O(1) bytes per worker
  regardless of the record count;
* co-hosted pools (or any number of attachers) share **one** physical
  copy of the columns;
* attaching is O(segment count), never O(records).

Lifecycle is explicit and asymmetric, mirroring POSIX semantics: every
holder calls :meth:`close` (drop this process's mapping); exactly one
owner calls :meth:`unlink` (remove the segments from the system).  The
store registers a GC finalizer as a safety net, so a leaked store
cannot leak ``/dev/shm`` segments past interpreter exit, and attachers
unregister from :mod:`multiprocessing.resource_tracker` so a dying
worker can never tear down segments its parent still serves from.

Heap backing stays the default everywhere: a database that was never
placed simply has no store (``db.store is None``) and behaves exactly
as before.  Placement is value-preserving — the placed database's
columns compare bit-identical to the originals — and read-only, which
matches the engine's copy-on-write discipline (columns are never
mutated in place; appends/expires build new arrays/views).
"""

from __future__ import annotations

import os
import secrets
import struct
import threading
import weakref
from typing import Mapping

import numpy as np

#: Prefix of every segment this module creates; the shm leak tests (and
#: operators inspecting /dev/shm) identify our segments by it.
SEGMENT_PREFIX = "osdp"

#: POSIX shm names are limited (31 bytes on macOS including the
#: leading slash); keep ours well under.
_TOKEN_BYTES = 8

#: Headroom segments carry a little-endian u64 *live element count* at
#: offset 0; data starts at this offset (16 keeps any numpy itemsize
#: aligned).  Exact-size segments have no header — the descriptor's
#: ``cap`` key is what marks a segment as headroom-shaped.
_HEADER_BYTES = 16
_LENGTH_HEADER = struct.Struct("<Q")

#: Minimum spare elements a headroom placement reserves, so tiny (or
#: empty) columns still absorb a useful number of appends before their
#: first remap.
_MIN_HEADROOM = 1024


def shm_available() -> bool:
    """True when POSIX shared memory is usable on this platform."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform-dependent
        return False
    return True


def placeable(db) -> bool:
    """True when every column of ``db`` has a fixed-width buffer.

    Object-dtype columns (mixed-type record values) have no raw-buffer
    form and keep the pickle path; numeric, boolean and fixed-width
    string columns all place.
    """
    from repro.data.columnar import RaggedColumn

    for name in db.column_names:
        column = db[name]
        if isinstance(column, RaggedColumn):
            if column.flat.dtype.hasobject or column.offsets.dtype.hasobject:
                return False
        elif np.asarray(column).dtype.hasobject:
            return False
    return True


#: Serializes segment *creation* with the pre-3.13 attach fallback
#: below: the fallback briefly no-ops ``resource_tracker.register``,
#: and a concurrent ``SharedMemory(create=True)`` in another thread
#: must not land its registration inside that window (it would lose
#: the tracker's SIGKILL safety net for a segment we own).
_TRACKER_LOCK = threading.Lock()


def _attach_segment(name: str):
    """Open an existing segment without adopting its lifetime.

    ``SharedMemory(name=...)`` registers the segment with this process's
    resource tracker, which would *unlink* it when this process exits —
    destroying data the creating process still serves (bpo-38119).
    Python 3.13 grew ``track=False``; on older interpreters the
    registration is suppressed instead of undone — calling
    ``unregister`` after the fact would be wrong under ``fork``, where
    parent and worker share one tracker and the undo would also erase
    the *owner's* registration.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on interpreter
        pass
    from multiprocessing import resource_tracker

    with _TRACKER_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _new_segment(nbytes: int):
    from multiprocessing import shared_memory

    # shm segments cannot be empty; 0-length columns round up to one
    # byte (the descriptor's shape, not the segment size, is truth).
    size = max(1, int(nbytes))
    for _ in range(8):
        name = f"{SEGMENT_PREFIX}_{secrets.token_hex(_TOKEN_BYTES)}"
        try:
            with _TRACKER_LOCK:  # see the lock's comment
                return shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
        except FileExistsError:  # pragma: no cover - 2^64 collision
            continue
    raise RuntimeError("could not allocate a unique shared-memory name")


def _view(
    shm, dtype: np.dtype, shape: tuple[int, ...], offset: int = 0
) -> np.ndarray:
    """A read-only ndarray over a segment's buffer."""
    count = int(np.prod(shape)) if shape else 1
    if count == 0:
        arr = np.empty(shape, dtype=dtype)
    else:
        arr = np.frombuffer(
            shm.buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
    arr.flags.writeable = False
    return arr


def _read_length(shm) -> int:
    """The live element count a headroom segment's header declares."""
    return _LENGTH_HEADER.unpack_from(shm.buf, 0)[0]


def _write_length(shm, n: int) -> None:
    _LENGTH_HEADER.pack_into(shm.buf, 0, int(n))


def _close_quietly(shm) -> None:
    try:
        shm.close()
    except BufferError:
        # Live array views still export the mmap's buffer, so the
        # mapping cannot be unmapped yet — it dies with the process (or
        # when the last view does).  Release the file descriptor now
        # and disarm the handle so SharedMemory.__del__ does not retry
        # the doomed close at GC/interpreter exit; unlink() is
        # independent of close() and still removes the name, so nothing
        # leaks system-wide.
        try:
            if shm._fd >= 0:  # pragma: no branch
                os.close(shm._fd)
                shm._fd = -1
        except OSError:  # pragma: no cover - already closed
            pass
        shm._mmap = None
        shm._buf = None


class ColumnStore:
    """The shared-memory segments behind one columnar database.

    Build with :meth:`place` (creates segments, becomes the owner) or
    :meth:`attach` (opens an existing descriptor, never the owner);
    read the rebuilt database from :attr:`database` and the wire form
    from :meth:`descriptor`.  ``close()`` releases this process's
    mappings; ``close(unlink=True)``/``unlink()`` additionally removes
    the segments (owner only — attachers silently skip it).
    """

    def __init__(self, segments: dict[str, object], owner: bool):
        self._segments = dict(segments)
        self._owner = owner
        self._closed = False
        self.database = None  # set by place()/attach()
        self._descriptor: dict | None = None
        # GC safety net: a store that falls out of scope must not leak
        # /dev/shm segments.  The finalizer captures the segment list,
        # never the store (else it would keep the store alive forever).
        self._finalizer = weakref.finalize(
            self, ColumnStore._cleanup, dict(self._segments), owner
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def place(cls, db, headroom: float | None = None) -> "ColumnStore":
        """Copy ``db``'s column buffers into fresh shm segments.

        Returns the owning store; ``store.database`` is a new
        :class:`~repro.data.columnar.ColumnarDatabase` with the same
        column values as read-only segment views (original record
        objects, when present, are carried over — they live only in
        this process).  Raises :class:`TypeError` when a column has no
        fixed-width buffer (see :func:`placeable`).

        ``headroom`` over-allocates every 1-D array's segment by that
        growth fraction (at least :data:`_MIN_HEADROOM` spare elements)
        behind a live-length header, so later :meth:`try_append` calls
        extend the columns in place instead of remapping — the
        streaming-append fast path.  ``None`` (the default) keeps the
        exact-size, headerless layout.
        """
        from repro.data.columnar import ColumnarDatabase, RaggedColumn

        if not placeable(db):
            raise TypeError(
                "database has object-dtype columns; shared-memory "
                "placement needs fixed-width buffers"
            )
        segments: dict[str, object] = {}
        spec: dict[str, dict] = {}
        columns: dict[str, object] = {}
        try:
            for name in db.column_names:
                column = db[name]
                if isinstance(column, RaggedColumn):
                    flat, flat_seg = cls._place_array(
                        column.flat, segments, headroom
                    )
                    offs, offs_seg = cls._place_array(
                        np.asarray(column.offsets), segments, headroom
                    )
                    columns[name] = RaggedColumn(flat=flat, offsets=offs)
                    spec[name] = {
                        "kind": "ragged",
                        "flat": flat_seg,
                        "offsets": offs_seg,
                    }
                else:
                    arr, seg = cls._place_array(
                        np.asarray(column), segments, headroom
                    )
                    columns[name] = arr
                    spec[name] = {"kind": "plain", **seg}
        except BaseException:
            for shm in segments.values():
                _close_quietly(shm)
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            raise
        store = cls(segments, owner=True)
        store._descriptor = {"v": 1, "columns": spec}
        store.database = ColumnarDatabase(
            columns, records=getattr(db, "_records", None)
        )
        store.database._store = store
        return store

    @staticmethod
    def _place_array(
        arr: np.ndarray, segments: dict, headroom: float | None = None
    ) -> tuple[np.ndarray, dict]:
        arr = np.ascontiguousarray(arr)
        if headroom is not None and arr.ndim == 1:
            cap = len(arr) + max(int(len(arr) * headroom), _MIN_HEADROOM)
            shm = _new_segment(_HEADER_BYTES + cap * arr.dtype.itemsize)
            segments[shm.name] = shm
            _write_length(shm, len(arr))
            if arr.size:
                np.frombuffer(
                    shm.buf,
                    dtype=arr.dtype,
                    count=arr.size,
                    offset=_HEADER_BYTES,
                )[:] = arr
            view = _view(shm, arr.dtype, arr.shape, offset=_HEADER_BYTES)
            return view, {
                "segment": shm.name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "cap": cap,
            }
        shm = _new_segment(arr.nbytes)
        segments[shm.name] = shm
        if arr.size:
            np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size)[
                :
            ] = arr.ravel()
        view = _view(shm, arr.dtype, arr.shape)
        return view, {
            "segment": shm.name,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
        }

    @classmethod
    def attach(cls, descriptor: Mapping) -> "ColumnStore":
        """Open the segments a descriptor names; zero data movement.

        The returned store is **not** the owner: closing it drops this
        process's mappings and never unlinks.  Works across ``fork``
        and ``spawn`` alike — the descriptor is plain data and the
        attach is by name.
        """
        from repro.data.columnar import ColumnarDatabase

        segments: dict[str, object] = {}
        try:
            columns = cls._open_columns(descriptor["columns"], segments)
        except BaseException:
            for shm in segments.values():
                _close_quietly(shm)
            raise
        store = cls(segments, owner=False)
        store._descriptor = {
            "v": 1,
            "columns": {k: dict(v) for k, v in descriptor["columns"].items()},
        }
        store.database = ColumnarDatabase(columns)
        store.database._store = store
        return store

    @staticmethod
    def _open_columns(spec: Mapping, segments: dict) -> dict:
        """Build column views from a columns spec, opening segments.

        Headroom segments (``cap`` key) read their **live** element
        count from the length header — the descriptor's ``shape`` is
        only the length at placement time, and the owner may have
        extended the column since.
        """
        from repro.data.columnar import RaggedColumn

        def open_array(seg: Mapping) -> np.ndarray:
            name = seg["segment"]
            if name not in segments:
                segments[name] = _attach_segment(name)
            shm = segments[name]
            if "cap" in seg:
                return _view(
                    shm,
                    np.dtype(seg["dtype"]),
                    (_read_length(shm),),
                    offset=_HEADER_BYTES,
                )
            return _view(shm, np.dtype(seg["dtype"]), tuple(seg["shape"]))

        columns: dict[str, object] = {}
        for name, seg in spec.items():
            if seg["kind"] == "ragged":
                columns[name] = RaggedColumn(
                    flat=open_array(seg["flat"]),
                    offsets=open_array(seg["offsets"]),
                )
            else:
                columns[name] = open_array(seg)
        return columns

    # ------------------------------------------------------------------
    # In-place extension (headroom segments)
    # ------------------------------------------------------------------
    def try_append(self, chunk):
        """Extend the stored columns in place by ``chunk``'s records.

        The streaming-append fast path: when every column's segment
        was placed with headroom and has room for the chunk (same
        schema, same dtypes), the chunk's values are written into the
        spare capacity and the length headers bumped — no new segment,
        no remap, O(chunk) work.  The result is bit-identical to
        ``ColumnarDatabase.concat([self.database, chunk])``: plain
        tails are the chunk's own arrays, and ragged offsets rebase by
        the running total exactly as ``concat``'s cumsum computes
        them.  Attachers pick up the new length via :meth:`refresh`.

        Returns the refreshed full database on success, or ``None``
        when any column cannot extend (no headroom, schema/dtype
        mismatch, or capacity overflow) — the caller falls back to a
        remap.
        """
        from repro.data.columnar import RaggedColumn

        if self._closed or self._descriptor is None:
            return None
        spec = self._descriptor["columns"]
        if tuple(spec) != tuple(chunk.column_names):
            return None
        writes: list[tuple] = []
        for name, seg in spec.items():
            column = chunk[name]
            if seg["kind"] == "ragged":
                if not isinstance(column, RaggedColumn):
                    return None
                flat_plan = self._plan_extend(
                    seg["flat"], np.asarray(column.flat)
                )
                offs_seg = seg["offsets"]
                if flat_plan is None or "cap" not in offs_seg:
                    return None
                dtype = np.dtype(offs_seg["dtype"])
                chunk_offsets = np.asarray(column.offsets)
                if chunk_offsets.dtype != dtype:
                    return None
                shm = self._segments[offs_seg["segment"]]
                live = _read_length(shm)
                last = np.frombuffer(
                    shm.buf,
                    dtype=dtype,
                    count=1,
                    offset=_HEADER_BYTES + (live - 1) * dtype.itemsize,
                )[0]
                offs_plan = self._plan_extend(
                    offs_seg, chunk_offsets[1:] + last
                )
                if offs_plan is None:
                    return None
                writes += [flat_plan, offs_plan]
            else:
                if isinstance(column, RaggedColumn):
                    return None
                plan = self._plan_extend(seg, np.asarray(column))
                if plan is None:
                    return None
                writes.append(plan)
        for shm, dtype, live, values in writes:
            if values.size:
                np.frombuffer(
                    shm.buf,
                    dtype=dtype,
                    count=values.size,
                    offset=_HEADER_BYTES + live * dtype.itemsize,
                )[:] = values
        # Values first, headers last: a torn observer can never see a
        # length that covers unwritten bytes.  Cross-column consistency
        # is the caller's single-writer protocol (extensions run under
        # the RPC exclusive lock / the pool's append op).
        for shm, dtype, live, values in writes:
            _write_length(shm, live + len(values))
        records = None
        old_records = getattr(self.database, "_records", None)
        chunk_records = getattr(chunk, "_records", None)
        if old_records is not None and chunk_records is not None:
            records = old_records + chunk_records
        return self.refresh(records=records)

    def _plan_extend(self, seg: Mapping, values: np.ndarray):
        """(shm, dtype, live, values) when ``values`` fit, else None."""
        if "cap" not in seg:
            return None
        dtype = np.dtype(seg["dtype"])
        if values.ndim != 1 or values.dtype != dtype:
            return None
        shm = self._segments.get(seg["segment"])
        if shm is None:
            return None
        live = _read_length(shm)
        if live + len(values) > int(seg["cap"]):
            return None
        return (shm, dtype, live, values)

    def refresh(self, records=None):
        """Rebuild the database views from the live length headers.

        Attachers call this after the owner extended the columns in
        place (:meth:`try_append`); cheap — views are rebuilt over the
        already-open segments, no attach and no copy.  Returns the
        refreshed database (also stored on :attr:`database`).
        """
        from repro.data.columnar import ColumnarDatabase

        if self._closed:
            raise RuntimeError("cannot refresh a closed store")
        columns = self._open_columns(
            self._descriptor["columns"], self._segments
        )
        self.database = ColumnarDatabase(columns, records=records)
        self.database._store = self
        return self.database

    def length_snapshot(self) -> dict[str, int]:
        """Live header lengths of every headroom segment.

        A rollback token: capture before :meth:`try_append`, hand back
        to :meth:`restore_lengths` to undo an extension whose commit
        failed downstream.
        """
        out: dict[str, int] = {}
        for seg in self._iter_array_specs():
            if "cap" in seg:
                out[seg["segment"]] = _read_length(
                    self._segments[seg["segment"]]
                )
        return out

    def restore_lengths(self, snapshot: Mapping[str, int]) -> None:
        """Roll length headers back to a :meth:`length_snapshot`.

        The bytes past the restored lengths become unreferenced spare
        capacity again; the next extension overwrites them.
        """
        for name, n in snapshot.items():
            _write_length(self._segments[name], n)

    def _iter_array_specs(self):
        for seg in (self._descriptor or {}).get("columns", {}).values():
            if seg["kind"] == "ragged":
                yield seg["flat"]
                yield seg["offsets"]
            else:
                yield seg

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(self._segments)

    def descriptor(self) -> dict:
        """The ~100-bytes-per-column wire form: segment names + layouts.

        Plain data (JSON-able, picklable); any process turns it back
        into the database with :meth:`attach`.
        """
        if self._descriptor is None:  # pragma: no cover - defensive
            raise RuntimeError("store has no descriptor")
        return {
            "v": self._descriptor["v"],
            "columns": {
                k: dict(v) for k, v in self._descriptor["columns"].items()
            },
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, unlink: bool | None = None) -> None:
        """Release this process's mappings (idempotent).

        ``unlink`` defaults to ownership: the owner removes the
        segments from the system, attachers only drop their views.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        ColumnStore._cleanup(
            self._segments, self._owner if unlink is None else unlink
        )

    def unlink(self) -> None:
        """Remove the segments from the system (close + unlink)."""
        self.close(unlink=True)

    @staticmethod
    def _cleanup(segments: dict, unlink: bool) -> None:
        for shm in segments.values():
            _close_quietly(shm)
            if unlink:
                try:
                    shm.unlink()
                except FileNotFoundError:  # already removed
                    pass

    def __enter__(self) -> "ColumnStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self._owner else "attached"
        return (
            f"ColumnStore({role}, segments={len(self._segments)}, "
            f"closed={self._closed})"
        )
