"""Synthetic stand-ins for the DPBench-1D benchmark histograms (Table 2).

The paper evaluates low-dimensional histogram release on seven 1-D
datasets from the DPBench study (Hay et al., SIGMOD 2016): Adult, Hepth,
Income, Nettrace, Medcost, Patent, Searchlogs — each a histogram over a
categorical domain of size 4096, characterized by *scale* (number of
records) and *sparsity* (fraction of empty bins).  The original data
files are not redistributable here, so we generate seeded synthetic
histograms matched to Table 2's published scale and sparsity, with
heavy-tailed shapes per dataset family:

========== ========= ======== =============================================
dataset    sparsity  scale    shape family
========== ========= ======== =============================================
Adult      0.98      17,665   few tight spike clusters (age-like)
Hepth      0.21      347,414  dense smooth decay (citation-like)
Income     0.45      20.8M    heavy-tail lognormal over half the domain
Nettrace   0.97      25,714   sparse spikes, *sorted* descending (§6.3.3.2)
Medcost    0.75      9,415    moderate clusters, small scale
Patent     0.06      27.9M    near-dense smooth heavy tail
Searchlogs 0.51      335,889  Zipfian over half the domain
========== ========= ======== =============================================

Scale is matched exactly (multinomial allocation of exactly ``scale``
records); sparsity is matched approximately (the benchmark for Table 2
reports target vs measured).  The DPBench study itself identifies scale,
sparsity and shape as the drivers of algorithm ranking, which is what
the reproduction needs to preserve.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

DOMAIN_SIZE = 4096


@dataclass(frozen=True)
class DatasetSpec:
    """Target statistics for one benchmark dataset (from Table 2)."""

    name: str
    sparsity: float
    scale: int
    shape: str
    sorted_descending: bool = False

    @property
    def support_size(self) -> int:
        """Number of non-empty bins implied by the target sparsity."""
        return max(1, round((1.0 - self.sparsity) * DOMAIN_SIZE))


DPBENCH_SPECS: dict[str, DatasetSpec] = {
    "adult": DatasetSpec("adult", sparsity=0.98, scale=17_665, shape="clustered"),
    "hepth": DatasetSpec("hepth", sparsity=0.21, scale=347_414, shape="smooth"),
    "income": DatasetSpec("income", sparsity=0.45, scale=20_787_122, shape="lognormal"),
    "nettrace": DatasetSpec(
        "nettrace", sparsity=0.97, scale=25_714, shape="spiky", sorted_descending=True
    ),
    "medcost": DatasetSpec("medcost", sparsity=0.75, scale=9_415, shape="clustered"),
    "patent": DatasetSpec("patent", sparsity=0.06, scale=27_948_226, shape="smooth"),
    "searchlogs": DatasetSpec("searchlogs", sparsity=0.51, scale=335_889, shape="zipf"),
}


def _clustered_support(
    spec: DatasetSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Support indices and weights for spike-cluster shapes (Adult, Medcost)."""
    k = spec.support_size
    n_clusters = max(2, k // 16)
    centers = rng.choice(DOMAIN_SIZE, size=n_clusters, replace=False)
    indices: set[int] = set()
    while len(indices) < k:
        center = centers[rng.integers(n_clusters)]
        offset = int(rng.normal(0.0, 6.0))
        indices.add(int(np.clip(center + offset, 0, DOMAIN_SIZE - 1)))
    support = np.fromiter(indices, dtype=np.int64, count=len(indices))
    weights = rng.pareto(1.2, size=len(support)) + 1.0
    return support, weights


def _smooth_support(
    spec: DatasetSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Dense smooth decay (Hepth, Patent): contiguous support, damped noise."""
    k = spec.support_size
    start = rng.integers(0, DOMAIN_SIZE - k + 1)
    support = np.arange(start, start + k)
    ranks = np.arange(1, k + 1, dtype=float)
    base = ranks ** -0.8
    noise = rng.lognormal(mean=0.0, sigma=0.4, size=k)
    return support, base * noise


def _lognormal_support(
    spec: DatasetSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    k = spec.support_size
    support = np.sort(rng.choice(DOMAIN_SIZE, size=k, replace=False))
    weights = rng.lognormal(mean=0.0, sigma=1.8, size=k)
    return support, weights


def _zipf_support(
    spec: DatasetSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    k = spec.support_size
    support = np.sort(rng.choice(DOMAIN_SIZE, size=k, replace=False))
    ranks = rng.permutation(k) + 1.0
    weights = ranks ** -1.1
    return support, weights


def _spiky_support(
    spec: DatasetSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    k = spec.support_size
    support = np.sort(rng.choice(DOMAIN_SIZE, size=k, replace=False))
    weights = rng.pareto(0.9, size=k) + 1.0
    return support, weights


_SHAPE_BUILDERS = {
    "clustered": _clustered_support,
    "smooth": _smooth_support,
    "lognormal": _lognormal_support,
    "zipf": _zipf_support,
    "spiky": _spiky_support,
}


def generate_dpbench(name: str, seed: int = 0) -> np.ndarray:
    """Generate the named benchmark histogram (length 4096, exact scale).

    Deterministic in ``(name, seed)``.  Records are allocated by a
    multinomial draw over heavy-tailed support weights, so ``sum(x) ==
    spec.scale`` exactly and the empirical sparsity approximates the
    Table 2 target (a handful of low-weight support bins may receive no
    records; Table 2's bench reports the drift).
    """
    key = name.lower()
    if key not in DPBENCH_SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DPBENCH_SPECS)}"
        )
    spec = DPBENCH_SPECS[key]
    # crc32, not hash(): str hashing is randomized per process
    # (PYTHONHASHSEED), which made "deterministic in (name, seed)" only
    # hold within one interpreter.
    rng = np.random.default_rng([seed, zlib.crc32(key.encode())])
    support, weights = _SHAPE_BUILDERS[spec.shape](spec, rng)
    probabilities = weights / weights.sum()
    counts = rng.multinomial(spec.scale, probabilities)
    x = np.zeros(DOMAIN_SIZE, dtype=np.int64)
    x[support] = counts
    if spec.sorted_descending:
        x = np.sort(x)[::-1].copy()
    return x


def load_all(seed: int = 0) -> dict[str, np.ndarray]:
    """All seven benchmark histograms keyed by dataset name."""
    return {name: generate_dpbench(name, seed=seed) for name in DPBENCH_SPECS}


def measured_sparsity(x: np.ndarray) -> float:
    """Fraction of empty bins — the statistic Table 2 reports."""
    return float(np.mean(x == 0))
