"""AHP-lite: a second two-phase DP histogram algorithm for the recipe.

Section 5.2 lists AHP (Zhang et al., *Towards Accurate Histogram
Publication under Differential Privacy*) among the two-phase algorithms
the OSDP recipe upgrades, leaving "extensions of other algorithms" as
future work.  This module implements a faithful lightweight variant and
its recipe instantiation ``AhpZ``:

Phase 1 (eps1): release a noisy histogram, threshold small counts to
zero, and *cluster* the surviving bins by sorted noisy value into groups
of near-equal counts (the partition is derived from noisy data only —
post-processing).

Phase 2 (eps2): release each cluster's total with Laplace noise and
spread it uniformly across the cluster's bins.

Unlike DAWA's contiguous buckets, AHP clusters arbitrary bins with
similar counts, so it shines when similar values are scattered across
the domain.  ``release_with_partition`` exposes the clusters in the
same ``DawaResult``-like shape consumed by the recipe post-processing —
here as a list of index groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.guarantees import DPGuarantee
from repro.core.policy import AllSensitivePolicy, Policy
from repro.distributions.laplace import sample_laplace
from repro.mechanisms.base import HistogramMechanism
from repro.mechanisms.dawaz import detect_zero_bins
from repro.queries.histogram import HISTOGRAM_L1_SENSITIVITY, HistogramInput


@dataclass(frozen=True)
class AhpResult:
    """An AHP release with its bin clusters (index arrays)."""

    estimate: np.ndarray
    clusters: list[np.ndarray]


class Ahp(HistogramMechanism):
    """AHP-lite: noisy sort-and-cluster + per-cluster estimation."""

    name = "ahp"

    def __init__(
        self,
        epsilon: float,
        split: float = 0.5,
        cluster_width: float = 2.0,
        threshold_factor: float = 1.0,
    ):
        super().__init__(epsilon)
        if not 0.0 < split < 1.0:
            raise ValueError("split must lie strictly between 0 and 1")
        if cluster_width <= 0:
            raise ValueError("cluster_width must be positive")
        self.split = split
        self.cluster_width = cluster_width
        self.threshold_factor = threshold_factor
        self.epsilon1 = split * epsilon
        self.epsilon2 = (1.0 - split) * epsilon

    @property
    def guarantee(self) -> DPGuarantee:
        return DPGuarantee(epsilon=self.epsilon)

    def _cluster(self, noisy: np.ndarray) -> list[np.ndarray]:
        """Group bins with similar noisy counts (post-processing)."""
        threshold = self.threshold_factor * HISTOGRAM_L1_SENSITIVITY / self.epsilon1
        zeroed = noisy <= threshold
        clusters: list[np.ndarray] = []
        zero_bins = np.flatnonzero(zeroed)
        if len(zero_bins):
            clusters.append(zero_bins)
        surviving = np.flatnonzero(~zeroed)
        if len(surviving) == 0:
            return clusters
        order = surviving[np.argsort(noisy[surviving])]
        # Greedy runs: a cluster closes when the next value exceeds the
        # run's start by a noise-scaled multiplicative band.
        band = self.cluster_width * HISTOGRAM_L1_SENSITIVITY / self.epsilon1
        start = 0
        for i in range(1, len(order) + 1):
            if i == len(order) or noisy[order[i]] > noisy[order[start]] + band:
                clusters.append(order[start:i])
                start = i
        return clusters

    def release_with_partition(
        self, hist: HistogramInput, rng: np.random.Generator
    ) -> AhpResult:
        x = np.asarray(hist.x, dtype=float)
        scale1 = HISTOGRAM_L1_SENSITIVITY / self.epsilon1
        noisy = x + sample_laplace(rng, scale1, size=x.shape)
        clusters = self._cluster(noisy)

        estimate = np.zeros_like(x)
        scale2 = HISTOGRAM_L1_SENSITIVITY / self.epsilon2
        for cluster in clusters:
            total = float(x[cluster].sum()) + float(sample_laplace(rng, scale2))
            estimate[cluster] = max(total, 0.0) / len(cluster)
        return AhpResult(estimate=estimate, clusters=clusters)

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        return self.release_with_partition(hist, rng).estimate


class AhpZ(HistogramMechanism):
    """The §5.2 recipe applied to AHP: OSDP zero-set + AHP + rescaling.

    Mirrors DAWAz (Algorithm 3) with AHP clusters in place of DAWA
    buckets: bins in the OSDP-detected zero set are forced to zero and
    each cluster's removed mass is redistributed over its survivors.
    """

    name = "ahpz"

    def __init__(
        self,
        epsilon: float,
        rho: float = 0.1,
        policy: Policy | None = None,
        ahp_split: float = 0.5,
    ):
        super().__init__(epsilon)
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must lie strictly between 0 and 1")
        self.rho = rho
        self.policy = policy
        self.epsilon_zero = rho * epsilon
        self.epsilon_dp = (1.0 - rho) * epsilon
        self.dp_algorithm = Ahp(self.epsilon_dp, split=ahp_split)

    @property
    def guarantee(self):
        from repro.core.guarantees import OSDPGuarantee

        return OSDPGuarantee(
            policy=self.policy if self.policy is not None else AllSensitivePolicy(),
            epsilon=self.epsilon,
        )

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        zero_mask = detect_zero_bins(hist, self.epsilon_zero, rng)
        result = self.dp_algorithm.release_with_partition(hist, rng)
        estimate = result.estimate.copy()
        for cluster in result.clusters:
            in_zero = zero_mask[cluster]
            n_zeroed = int(in_zero.sum())
            if n_zeroed == 0:
                continue
            if n_zeroed == len(cluster):
                estimate[cluster] = 0.0
                continue
            removed = float(estimate[cluster][in_zero].sum())
            estimate[cluster[in_zero]] = 0.0
            survivors = cluster[~in_zero]
            estimate[survivors] += removed / len(survivors)
        return estimate
