"""Parallel composition of OSDP releases over disjoint partitions.

The appendix's extended OSDP (Definition 10.2) supports parallel
composition (Theorem 10.2): mechanisms applied to disjoint cells of a
partition compose at ``max(eps_i)`` rather than ``sum(eps_i)``, because
an extended neighbor (add/remove one sensitive record) touches exactly
one cell.  Converting back to standard OSDP costs a factor of two in
epsilon (Theorem 10.1).

:class:`PartitionedRelease` packages this: assign one mechanism per
partition cell (keyed by a record-partitioning function), release each
cell independently, and report the composed guarantee both as eOSDP
(max) and as plain OSDP (2x max).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

import numpy as np

from repro.core.guarantees import (
    EOSDPGuarantee,
    OSDPGuarantee,
    eosdp_to_osdp,
    parallel_composition,
)
from repro.core.policy import Policy
from repro.mechanisms.osdp_rr import OsdpRR


class PartitionedRelease:
    """Run per-cell OsdpRR releases under eOSDP parallel composition.

    Parameters
    ----------
    policy:
        The sensitivity policy shared by every cell.
    cell_of:
        Maps each record to a hashable partition key (e.g. its region).
        The cells must be determined by public record structure — the
        partition itself is not protected.
    epsilon_of:
        Per-cell epsilon; either a mapping (missing cells use
        ``default_epsilon``) or None for a uniform budget.
    """

    def __init__(
        self,
        policy: Policy,
        cell_of: Callable[[object], Hashable],
        default_epsilon: float = 1.0,
        epsilon_of: Mapping[Hashable, float] | None = None,
    ):
        if default_epsilon <= 0:
            raise ValueError("default_epsilon must be positive")
        self.policy = policy
        self.cell_of = cell_of
        self.default_epsilon = default_epsilon
        self.epsilon_of = dict(epsilon_of or {})
        for cell, eps in self.epsilon_of.items():
            if eps <= 0:
                raise ValueError(f"epsilon for cell {cell!r} must be positive")
        self._released_cells: list[Hashable] = []

    def cell_epsilon(self, cell: Hashable) -> float:
        return self.epsilon_of.get(cell, self.default_epsilon)

    def release(
        self, records: Iterable[object], rng: np.random.Generator
    ) -> dict[Hashable, list[object]]:
        """Per-cell truthful samples, one OsdpRR run per cell."""
        by_cell: dict[Hashable, list[object]] = {}
        for record in records:
            by_cell.setdefault(self.cell_of(record), []).append(record)
        released: dict[Hashable, list[object]] = {}
        self._released_cells = sorted(by_cell, key=repr)
        for cell in self._released_cells:
            mech = OsdpRR(self.policy, self.cell_epsilon(cell))
            released[cell] = mech.sample(by_cell[cell], rng)
        return released

    def eosdp_guarantee(self) -> EOSDPGuarantee:
        """Theorem 10.2: the composition holds at max over cell epsilons."""
        if not self._released_cells:
            raise ValueError("no release has been performed yet")
        return parallel_composition(
            [
                EOSDPGuarantee(policy=self.policy, epsilon=self.cell_epsilon(c))
                for c in self._released_cells
            ]
        )

    def osdp_guarantee(self) -> OSDPGuarantee:
        """Theorem 10.1: standard OSDP at twice the eOSDP epsilon."""
        return eosdp_to_osdp(self.eosdp_guarantee())
