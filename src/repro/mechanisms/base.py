"""Common mechanism interfaces and a registry for the evaluation harness.

Every histogram-release mechanism implements
``release(hist: HistogramInput, rng) -> np.ndarray`` and exposes a
``guarantee`` describing its privacy promise.  DP mechanisms read only
``hist.x``; OSDP mechanisms additionally use ``hist.x_ns`` (and the
optional sensitive-bin mask).  Keeping the interface uniform lets the
regret experiments of Section 6.3.3 sweep a pool of mechanisms over the
same inputs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from repro.core.accountant import PrivacyAccountant
from repro.core.guarantees import DPGuarantee, OSDPGuarantee
from repro.queries.histogram import HistogramInput


class HistogramMechanism(ABC):
    """A randomized histogram-release algorithm."""

    name: str = "mechanism"

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = epsilon

    @abstractmethod
    def release(
        self, hist: HistogramInput, rng: np.random.Generator
    ) -> np.ndarray:
        """Produce a private estimate of ``hist.x`` (full-domain vector)."""

    def release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        """``n_trials`` independent releases as an ``(n_trials, d)`` matrix.

        Two rng modes:

        * a single :class:`numpy.random.Generator` — the *batch* mode.
          Subclasses override this with a vectorized fast path that
          samples the whole noise matrix in one shot (see
          :mod:`repro.mechanisms.batch_sampling`); rows are iid draws of
          the release distribution but not stream-identical to a
          sequential ``release`` loop.  The base implementation loops
          ``release`` on the shared stream.
        * a *sequence* of generators (e.g. from
          :func:`repro.evaluation.runner.spawn_rngs`) — the
          compatibility mode: row ``i`` is exactly
          ``release(hist, rng[i])``, bit-for-bit the paper's per-trial
          protocol.  ``n_trials``, if given, must match the sequence
          length.
        """
        return self._sequential_release_batch(hist, rng, n_trials)

    def _sequential_release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        """The reference implementation both modes fall back to."""
        if isinstance(rng, np.random.Generator):
            if n_trials is None:
                raise ValueError("n_trials is required with a single generator")
            if n_trials < 1:
                raise ValueError("need at least one trial")
            rows = [self.release(hist, rng) for _ in range(n_trials)]
        else:
            rngs = list(rng)
            if n_trials is not None and n_trials != len(rngs):
                raise ValueError(
                    f"n_trials={n_trials} does not match {len(rngs)} generators"
                )
            if not rngs:
                raise ValueError("need at least one generator")
            rows = [self.release(hist, r) for r in rngs]
        return np.stack(rows)

    # ------------------------------------------------------------------
    # Shard-aware end-to-end entry points
    # ------------------------------------------------------------------
    def release_from_database(
        self,
        db,
        query,
        policy,
        rng: np.random.Generator,
        accountant: PrivacyAccountant | None = None,
    ) -> np.ndarray:
        """Histogram construction + budget charge + one release.

        ``db`` may be a row :class:`repro.data.database.Database`, a
        :class:`repro.data.columnar.ColumnarDatabase`, or a
        :class:`repro.data.sharding.ShardedColumnarDatabase` — the
        histogram input is built through the matching (possibly
        per-shard parallel) path, so every mechanism gets a sharded
        front door without knowing about shards.
        """
        from repro.queries.histogram import histogram_input_for

        hist = histogram_input_for(db, query, policy)
        self.charge_for(accountant, policy)
        return self.release(hist, rng)

    def release_batch_from_database(
        self,
        db,
        query,
        policy,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
        accountant: PrivacyAccountant | None = None,
    ) -> np.ndarray:
        """``release_batch`` behind the same any-database front door.

        One accountant charge covers the whole trial matrix: the trials
        are analyses of the same release distribution used jointly, and
        the evaluation protocol treats them as one budget-ed query.
        """
        from repro.queries.histogram import histogram_input_for

        hist = histogram_input_for(db, query, policy)
        self.charge_for(accountant, policy)
        return self.release_batch(hist, rng, n_trials)

    @property
    @abstractmethod
    def guarantee(self) -> DPGuarantee | OSDPGuarantee:
        """The privacy guarantee this mechanism satisfies."""

    def charge(self, accountant: PrivacyAccountant | None, label: str = "") -> None:
        """Charge this mechanism's epsilon to an accountant, if given."""
        if accountant is None:
            return
        guarantee = self.guarantee
        if isinstance(guarantee, DPGuarantee):
            # DP is (P_all, eps)-OSDP (Lemma 3.1); charge under P_all.
            from repro.core.policy import AllSensitivePolicy

            accountant.charge(AllSensitivePolicy(), guarantee.epsilon, label or self.name)
        else:
            accountant.charge(guarantee.policy, guarantee.epsilon, label or self.name)

    def charge_for(
        self,
        accountant: PrivacyAccountant | None,
        policy,
        label: str = "",
    ) -> None:
        """Charge under the policy that actually built the input.

        The ledger must record the policy whose ``x_ns`` the mechanism
        consumed — an OSDP mechanism constructed without a policy (e.g.
        by a registry factory) still only satisfies ``(P, eps)``-OSDP
        for the ``P`` used to partition the data, so charging its
        guarantee's ``P_all`` placeholder would overstate protection.
        DP mechanisms ignore the input policy and charge under ``P_all``
        (Lemma 3.1).
        """
        if accountant is None:
            return
        guarantee = self.guarantee
        if isinstance(guarantee, DPGuarantee) or policy is None:
            from repro.core.policy import AllSensitivePolicy

            policy = AllSensitivePolicy()
        accountant.charge(policy, guarantee.epsilon, label or self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(epsilon={self.epsilon})"


MechanismFactory = Callable[[float], HistogramMechanism]


class MechanismRegistry:
    """Name -> factory registry used by the regret experiments."""

    def __init__(self) -> None:
        self._factories: dict[str, MechanismFactory] = {}

    def register(self, name: str, factory: MechanismFactory) -> None:
        if name in self._factories:
            raise ValueError(f"mechanism {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str, epsilon: float) -> HistogramMechanism:
        try:
            factory = self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown mechanism {name!r}; registered: {sorted(self._factories)}"
            ) from None
        return factory(epsilon)

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories
