"""Common mechanism interfaces and a registry for the evaluation harness.

Every histogram-release mechanism implements
``release(hist: HistogramInput, rng) -> np.ndarray`` and exposes a
``guarantee`` describing its privacy promise.  DP mechanisms read only
``hist.x``; OSDP mechanisms additionally use ``hist.x_ns`` (and the
optional sensitive-bin mask).  Keeping the interface uniform lets the
regret experiments of Section 6.3.3 sweep a pool of mechanisms over the
same inputs.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.accountant import PrivacyAccountant
from repro.core.guarantees import DPGuarantee, OSDPGuarantee
from repro.queries.histogram import HistogramInput


# ----------------------------------------------------------------------
# Source registry: how `HistogramMechanism.run` turns an arbitrary data
# source into the HistogramInput every mechanism consumes.  Entries are
# (matcher, builder) pairs tried in registration order; the builder
# receives (source, query, policy) and returns a HistogramInput.  Row,
# columnar and sharded databases are covered out of the box; exotic
# substrates (a feature store, an RPC stub) join via
# `register_release_source` instead of growing new per-mechanism entry
# points — this is the single dispatch that replaced the old
# release/release_batch/release_from_database/release_batch_from_database
# four-way split.
# ----------------------------------------------------------------------

_SOURCE_BUILDERS: list[tuple[Callable, Callable]] = []


def register_release_source(matcher: Callable, builder: Callable) -> None:
    """Teach ``HistogramMechanism.run`` a new data-source shape.

    ``matcher(source) -> bool`` decides whether ``builder(source,
    query, policy) -> HistogramInput`` handles it.  User-registered
    sources take precedence over the built-in database fallback (they
    are tried first, in registration order).
    """
    _SOURCE_BUILDERS.append((matcher, builder))


def resolve_histogram_source(source, query, policy) -> HistogramInput:
    """Build the :class:`HistogramInput` for any registered source shape.

    A ready-made :class:`HistogramInput` passes through untouched; a
    database of any flavor (row, columnar, sharded) routes through
    :func:`repro.queries.histogram.histogram_input_for` and requires a
    query and policy.
    """
    if isinstance(source, HistogramInput):
        return source
    for matcher, builder in _SOURCE_BUILDERS:
        if matcher(source):
            return builder(source, query, policy)
    from repro.queries.histogram import histogram_input_for

    if hasattr(source, "histogram") or hasattr(source, "map_shards"):
        if query is None or policy is None:
            raise ValueError(
                "releasing from a database requires a query (or binning) "
                "and a policy"
            )
        return histogram_input_for(source, query, policy)
    raise TypeError(
        f"cannot build a histogram input from {type(source).__name__}; "
        "pass a HistogramInput or a database, or register the source "
        "shape with register_release_source"
    )


class HistogramMechanism(ABC):
    """A randomized histogram-release algorithm."""

    name: str = "mechanism"

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = epsilon

    @abstractmethod
    def release(
        self, hist: HistogramInput, rng: np.random.Generator
    ) -> np.ndarray:
        """Produce a private estimate of ``hist.x`` (full-domain vector)."""

    def release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        """``n_trials`` independent releases as an ``(n_trials, d)`` matrix.

        Two rng modes:

        * a single :class:`numpy.random.Generator` — the *batch* mode.
          Subclasses override this with a vectorized fast path that
          samples the whole noise matrix in one shot (see
          :mod:`repro.mechanisms.batch_sampling`); rows are iid draws of
          the release distribution but not stream-identical to a
          sequential ``release`` loop.  The base implementation loops
          ``release`` on the shared stream.
        * a *sequence* of generators (e.g. from
          :func:`repro.evaluation.runner.spawn_rngs`) — the
          compatibility mode: row ``i`` is exactly
          ``release(hist, rng[i])``, bit-for-bit the paper's per-trial
          protocol.  ``n_trials``, if given, must match the sequence
          length.
        """
        return self._sequential_release_batch(hist, rng, n_trials)

    def _sequential_release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        """The reference implementation both modes fall back to."""
        if isinstance(rng, np.random.Generator):
            if n_trials is None:
                raise ValueError("n_trials is required with a single generator")
            if n_trials < 1:
                raise ValueError("need at least one trial")
            rows = [self.release(hist, rng) for _ in range(n_trials)]
        else:
            rngs = list(rng)
            if n_trials is not None and n_trials != len(rngs):
                raise ValueError(
                    f"n_trials={n_trials} does not match {len(rngs)} generators"
                )
            if not rngs:
                raise ValueError("need at least one generator")
            rows = [self.release(hist, r) for r in rngs]
        return np.stack(rows)

    # ------------------------------------------------------------------
    # The single end-to-end entry point
    # ------------------------------------------------------------------
    def run(
        self,
        source,
        rng: np.random.Generator | Sequence[np.random.Generator],
        *,
        n_trials: int | None = None,
        query=None,
        binning=None,
        policy=None,
        accountant: PrivacyAccountant | None = None,
        label: str = "",
    ) -> np.ndarray:
        """Build the histogram input, charge the budget, sample a release.

        The one front door that replaced the old four-way
        ``release``/``release_batch``/``*_from_database`` split:
        ``source`` may be a ready :class:`HistogramInput`, a row
        :class:`repro.data.database.Database`, a
        :class:`repro.data.columnar.ColumnarDatabase`, a
        :class:`repro.data.sharding.ShardedColumnarDatabase`, or any
        shape registered via :func:`register_release_source` — the
        input is built through the matching (possibly per-shard
        parallel) path, so every mechanism gets a sharded front door
        without knowing about shards.

        ``binning``/``policy`` accept live objects *or* their wire
        specs (plain dicts), keeping this the same protocol the remote
        backends speak.  With ``n_trials=None`` and a single generator
        one release is drawn and returned as a 1-D vector; otherwise
        (an explicit ``n_trials``, or a sequence of per-trial
        generators) the result is an
        ``(n_trials, n_bins)`` matrix with one accountant charge
        covering the whole trial matrix (the trials are analyses of
        one release distribution used jointly, and the evaluation
        protocol treats them as one budget-ed query).
        """
        from repro.core.policy_language import policy_from_spec
        from repro.queries.histogram import (
            HistogramQuery,
            binning_from_spec,
        )

        if isinstance(policy, Mapping):
            policy = policy_from_spec(policy)
        if binning is not None:
            if query is not None:
                raise ValueError("pass either query or binning, not both")
            if isinstance(binning, Mapping):
                binning = binning_from_spec(binning)
            query = HistogramQuery(binning)
        hist = resolve_histogram_source(source, query, policy)
        if accountant is not None:
            self.charge_for(accountant, policy, label=label)
        if n_trials is None and isinstance(rng, np.random.Generator):
            return self.release(hist, rng)
        # A sequence of generators is the per-trial compatibility mode:
        # one row per generator, trials inferred from the length.
        return self.release_batch(hist, rng, n_trials)

    # ------------------------------------------------------------------
    # Deprecated shims over `run` (the pre-PR-4 entry-point split)
    # ------------------------------------------------------------------
    def release_from_database(
        self,
        db,
        query,
        policy,
        rng: np.random.Generator,
        accountant: PrivacyAccountant | None = None,
    ) -> np.ndarray:
        """Deprecated: use :meth:`run` (``mechanism.run(db, rng, ...)``)."""
        warnings.warn(
            "release_from_database is deprecated; use "
            "mechanism.run(db, rng, query=..., policy=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        hist = resolve_histogram_source(db, query, policy)
        self.charge_for(accountant, policy)
        return self.release(hist, rng)

    def release_batch_from_database(
        self,
        db,
        query,
        policy,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
        accountant: PrivacyAccountant | None = None,
    ) -> np.ndarray:
        """Deprecated: use :meth:`run` with ``n_trials``."""
        warnings.warn(
            "release_batch_from_database is deprecated; use "
            "mechanism.run(db, rng, n_trials=..., query=..., policy=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        hist = resolve_histogram_source(db, query, policy)
        self.charge_for(accountant, policy)
        return self.release_batch(hist, rng, n_trials)

    @property
    @abstractmethod
    def guarantee(self) -> DPGuarantee | OSDPGuarantee:
        """The privacy guarantee this mechanism satisfies."""

    def charge(self, accountant: PrivacyAccountant | None, label: str = "") -> None:
        """Charge this mechanism's epsilon to an accountant, if given."""
        if accountant is None:
            return
        guarantee = self.guarantee
        if isinstance(guarantee, DPGuarantee):
            # DP is (P_all, eps)-OSDP (Lemma 3.1); charge under P_all.
            from repro.core.policy import AllSensitivePolicy

            accountant.charge(AllSensitivePolicy(), guarantee.epsilon, label or self.name)
        else:
            accountant.charge(guarantee.policy, guarantee.epsilon, label or self.name)

    def charge_for(
        self,
        accountant: PrivacyAccountant | None,
        policy,
        label: str = "",
    ) -> None:
        """Charge under the policy that actually built the input.

        The ledger must record the policy whose ``x_ns`` the mechanism
        consumed — an OSDP mechanism constructed without a policy (e.g.
        by a registry factory) still only satisfies ``(P, eps)``-OSDP
        for the ``P`` used to partition the data, so charging its
        guarantee's ``P_all`` placeholder would overstate protection.
        DP mechanisms ignore the input policy and charge under ``P_all``
        (Lemma 3.1).
        """
        if accountant is None:
            return
        guarantee = self.guarantee
        if isinstance(guarantee, DPGuarantee) or policy is None:
            from repro.core.policy import AllSensitivePolicy

            policy = AllSensitivePolicy()
        accountant.charge(policy, guarantee.epsilon, label or self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(epsilon={self.epsilon})"


MechanismFactory = Callable[[float], HistogramMechanism]


class MechanismRegistry:
    """Name -> factory registry used by the regret experiments."""

    def __init__(self) -> None:
        self._factories: dict[str, MechanismFactory] = {}

    def register(self, name: str, factory: MechanismFactory) -> None:
        if name in self._factories:
            raise ValueError(f"mechanism {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str, epsilon: float) -> HistogramMechanism:
        try:
            factory = self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown mechanism {name!r}; registered: {sorted(self._factories)}"
            ) from None
        return factory(epsilon)

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories
