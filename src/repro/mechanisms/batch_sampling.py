"""Vectorized noise kernels for the batched multi-trial release paths.

``release_batch`` implementations draw their ``(n_trials, n_bins)``
noise matrices here instead of looping ``n_trials`` numpy sampler
calls.  Three ideas carry all of the speedup:

1. **Ufunc pipelines instead of scalar C loops.**  numpy's
   ``Generator.laplace`` runs one scalar ``log`` per variate inside the
   distributions C loop; an inverse-transform built from SIMD-vectorized
   ufuncs (``np.log`` over a whole matrix) produces the same
   distribution several times faster.  Magnitudes come from
   single-precision uniforms — noise granularity ~1e-7 relative, far
   below every mechanism's noise scale — and are widened to float64 in
   the final fused add.

2. **Support-restricted sampling.**  Binomial thinning and the clipped
   one-sided Laplace release are *deterministically zero* on bins with
   ``x_ns = 0``, so on sparse histograms only the support needs noise.
   Zero-count entries are also the most expensive part of numpy's
   array-``n`` binomial loop (per-element sampler setup), so skipping
   them wins twice.

3. **Setup amortization.**  Scratch buffers are reused across calls to
   keep the large temporaries out of the mmap/page-fault path, and
   binomial inputs are sorted so numpy's per-``(n, p)`` sampler setup
   is reused across equal counts.  All randomness is drawn from — or
   deterministically seeded by — the caller's generator, so a seeded
   run is fully reproducible.

The kernels are **distribution-exact** (up to float32 uniform
granularity in the inverse transforms); they are *not* stream-identical
to the per-trial ``release`` loop.  For bitwise reproduction of the
paper's spawned-rng protocol, pass ``release_batch`` a *sequence* of
generators — that mode delegates to ``release`` row by row.

The transforms themselves execute on the active kernel backend
(:mod:`repro.mechanisms.kernels`): the pure-numpy ufunc pipelines by
default, or fused ``@njit(nogil=True)`` loops when numba is installed
(``REPRO_KERNEL`` overrides).  All randomness is drawn here, from the
caller's generator, on every backend — the backend only transforms
already-drawn uniforms — so a seeded release is reproducible per
backend and the counts feeding the samplers are byte-identical across
backends.

Thread safety: the scratch buffers **and the bulk-bits generator** are
thread-local (each thread reuses its own pool and its own SFC64), so
concurrent releases — the RPC tier serves the read path under a shared
lock — never write into each other's noise and never interleave draws
from a shared bitgen stream; the binomial/log-factorial table pools
hold immutable values and only ever rebind or insert under the GIL, so
the worst concurrent case is a redundant identical build.
"""

from __future__ import annotations

import numpy as np

from repro.mechanisms import kernels as _kernels
from repro.mechanisms.kernels import (  # re-exported for callers/tests
    _MAX_SCRATCH_ENTRIES,
    _scratch_local,
    scratch as _scratch,
)
from repro.mechanisms.kernels._constants import (
    _BINOM_U_EDGE,
    _EXP_ONE32,
    _HALF32,
    _LN4_32,
    _MANTISSA_SHIFT,
    _MIN_TSQ32,
    _MIN_U32,
    _SIGN32,
)


def _bulk_bits_generator(rng: np.random.Generator) -> np.random.BitGenerator:
    """A 64-bit-word SFC64 bit generator deterministically seeded from ``rng``.

    ``random_raw`` word width depends on the bit generator — MT19937
    words carry only 32 random bits in a uint64 — so raw-bit kernels
    must not read the caller's stream directly.  Instead a
    **thread-local** SFC64 is reseeded from four ``rng`` draws (uniform
    64-bit words are a valid SFC64 state, and assigning state skips the
    construction cost), which works for every Generator and keeps runs
    reproducible.  Thread-locality is load-bearing: a module-level
    bitgen would let two concurrent releases interleave draws from one
    stream — breaking seeded reproducibility and correlating two
    analysts' noise (the ``_scratch_local`` pattern, applied to the
    generator itself).
    """
    bitgen = getattr(_scratch_local, "sfc_bitgen", None)
    if bitgen is None:
        bitgen = _scratch_local.sfc_bitgen = np.random.SFC64(0)
        _scratch_local.sfc_template = bitgen.state
    state = _scratch_local.sfc_template
    state["state"]["state"] = rng.integers(0, 2**64, size=4, dtype=np.uint64)
    bitgen.state = state
    return bitgen


def laplace_rows(
    rng: np.random.Generator,
    scale: float,
    base: np.ndarray,
    n_rows: int,
) -> np.ndarray:
    """``base + Lap(scale)`` iid, as an ``(n_rows, len(base))`` matrix.

    Inverse transform from one 23-bit uniform per variate:
    ``t ~ U[-1/2, 1/2)``, then ``X = sign(t) * scale * (-ln|2t|)`` is
    Laplace(scale) — ``|2t|`` is uniform so ``-ln|2t|`` is Exp(1), and
    the sign is an independent fair coin.

    ``t`` is built straight from raw 64-bit SFC64 words with the
    exponent trick (23 mantissa bits under a fixed exponent give a
    float in ``[1, 2)``; subtracting 1.5 centers it), which costs about
    half of a ``Generator.random`` float fill.  ``ln|2t|`` is computed
    as ``(ln(t^2) + ln 4) / 2`` to reuse the squaring pass, and the
    sign is applied by XOR-ing ``t``'s sign bit into the float32 noise,
    which avoids a ``copysign`` pass.
    """
    if n_rows < 1:
        raise ValueError("need at least one row")
    base = np.asarray(base, dtype=np.float64)
    shape = (n_rows, base.shape[-1])
    n = n_rows * base.shape[-1]
    # Two 32-bit lanes per raw word; the slice view stays contiguous.
    # The draw happens here, on the caller's (thread-local) generator;
    # the backend only transforms the already-drawn bits.
    raw = _bulk_bits_generator(rng).random_raw((n + 1) // 2)
    bits = raw.view(np.uint32)[:n].reshape(shape)
    return _kernels.laplace_transform(bits, scale, base)


def one_sided_rows(
    rng: np.random.Generator,
    scale: float,
    values: np.ndarray,
    n_rows: int,
) -> np.ndarray:
    """``values + Lap^-(scale)`` iid, as an ``(n_rows, len(values))`` matrix.

    One-sided Laplace noise is ``scale * ln(u)`` for ``u ~ U(0,1]``
    (Definition 5.1: the negated exponential).
    """
    if n_rows < 1:
        raise ValueError("need at least one row")
    values = np.asarray(values, dtype=np.float64)
    shape = (n_rows, values.shape[-1])
    u = _scratch(shape, np.float32, 0)
    rng.random(dtype=np.float32, out=u)
    return _kernels.one_sided_transform(u, scale, values)


# Window half-width for the inverse-CDF binomial tables, in standard
# deviations.  Binomial tails are sub-Gaussian, so the truncated mass is
# below ~1e-30 per tail — far under the float64 CDF rounding the
# transform already carries, and under the f32 uniform granularity the
# other kernels accept.
_BINOM_WINDOW_SIGMAS = 12.0
# Build tables only when the draw matrix is big enough to amortize them.
# The tables are cached across calls — the trial/request traffic both
# the sweep and the release server generate reuses one (counts, p) pair
# many times — so the ratio is well above 1; below the threshold
# numpy's per-draw loop wins outright.
_BINOM_TABLE_DRAW_RATIO = 16.0
# (_BINOM_U_EDGE — the uniform edge clamp — lives in
# repro.mechanisms.kernels._constants, shared with the backends.)

_MAX_BINOM_TABLES = 8
_binom_table_pool: dict[tuple, tuple] = {}
_binom_size_pool: dict[tuple, int] = {}


def _pool_insert(pool: dict, key, value) -> None:
    """Bounded insert: evict the oldest entry, never the whole pool."""
    if len(pool) >= _MAX_BINOM_TABLES:
        pool.pop(next(iter(pool)))
    pool[key] = value

_logfact_table = np.zeros(1)


def _log_factorials(n_max: int) -> np.ndarray:
    """``ln k!`` for ``k in [0, n_max]`` (a growing module-level table)."""
    global _logfact_table
    if len(_logfact_table) <= n_max:
        size = max(n_max + 1, 2 * len(_logfact_table))
        table = np.zeros(size)
        np.cumsum(np.log(np.arange(1, size)), out=table[1:])
        _logfact_table = table
    return _logfact_table


def _binomial_windows(
    uniq: np.ndarray, p: float
) -> tuple[np.ndarray, np.ndarray]:
    """Per-distinct-count support windows ``[lo, hi]`` covering the mass."""
    mean = uniq * p
    half = _BINOM_WINDOW_SIGMAS * np.sqrt(mean * (1.0 - p)) + 1.0
    lo = np.maximum(np.floor(mean - half), 0.0).astype(np.int64)
    hi = np.minimum(np.ceil(mean + half), uniq).astype(np.int64)
    return lo, hi


def _binom_key(counts: np.ndarray, p: float) -> tuple:
    """The table-pool key of a ``(counts, p)`` pair (content hash)."""
    return (float(p), len(counts), hash(counts.tobytes()))


def _binomial_table(counts: np.ndarray, p: float) -> tuple:
    """The grouped inverse-CDF table for ``(counts, p)``, cached.

    The table depends only on the distinct counts and ``p`` — exactly
    the pair that repeats across a sweep's trials and a server's
    request stream over one histogram — so it is built once and reused
    (the binomial analog of the scratch-buffer amortization above).
    Returns ``(inverse, scaled, k_flat)``: the per-column group ids,
    the group-lifted CDF array, and the flat outcome values.
    """
    key = _binom_key(counts, p)
    hit = _binom_table_pool.get(key)
    if hit is not None:
        return hit
    uniq, inverse = np.unique(counts, return_inverse=True)
    lo, hi = _binomial_windows(uniq, p)
    widths = hi - lo + 1
    offsets = np.concatenate([[0], np.cumsum(widths)])
    starts = offsets[:-1]
    k_flat = (
        np.arange(int(offsets[-1]))
        - np.repeat(starts, widths)
        + np.repeat(lo, widths)
    )
    n_flat = np.repeat(uniq, widths)
    logfact = _log_factorials(int(uniq[-1]))
    log_pmf = (
        logfact[n_flat]
        - logfact[k_flat]
        - logfact[n_flat - k_flat]
        + k_flat * np.log(p)
        + (n_flat - k_flat) * np.log1p(-p)
    )
    cdf = np.cumsum(np.exp(log_pmf))
    base = np.concatenate([[0.0], cdf[offsets[1:-1] - 1]])
    mass = cdf[offsets[1:] - 1] - base
    # Per-group CDF in (0, 1] (the last entry of each group divides to
    # exactly 1.0), lifted by the group index so one sorted array
    # serves every group: a query ``u + g`` lies strictly inside group
    # ``g``'s span once ``u`` is clamped off the lattice edges.
    scaled = (cdf - np.repeat(base, widths)) / np.repeat(mass, widths)
    scaled += np.repeat(np.arange(len(uniq), dtype=np.float64), widths)
    entry = (inverse, scaled, k_flat)
    _pool_insert(_binom_table_pool, key, entry)
    return entry


def binomial_inverse_cdf_rows(
    rng: np.random.Generator,
    counts: np.ndarray,
    p: float,
    n_rows: int,
) -> np.ndarray:
    """``Binomial(n_j, p)`` per column via grouped inverse-CDF tables.

    The dense-support fast path: instead of one BTPE rejection draw per
    matrix entry, the distinct counts are grouped and every group gets
    one explicit CDF table over its high-mass window (``±12`` standard
    deviations, truncating ~1e-30 of tail mass — far below the
    transform's own float64 rounding).  All groups' tables live in one
    flat array whose per-group CDFs are normalized to ``(0, 1]`` and
    lifted by the group index, so a single ``np.searchsorted`` over one
    uniform matrix inverts every draw at once — no per-group Python
    loop, no per-draw rejection — and the table is cached across calls
    (see :func:`_binomial_table`).  Distribution-exact up to the
    float64 CDF rounding and the ``2^-26`` edge clamp; not
    stream-identical to ``Generator.binomial``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    inverse, scaled, k_flat = _binomial_table(counts, p)
    u = rng.random((n_rows, len(counts)))
    return _kernels.binomial_lookup(scaled, inverse, k_flat, u)


def binomial_support_rows(
    rng: np.random.Generator,
    sorted_counts: np.ndarray,
    p: float,
    n_rows: int,
) -> np.ndarray:
    """``Binomial(n_j, p)`` per column, counts pre-sorted ascending.

    Two regimes.  When the matrix holds enough draws to amortize
    (cached) CDF tables over the distinct counts, the grouped
    inverse-CDF transform (:func:`binomial_inverse_cdf_rows`) samples
    the whole matrix in one searchsorted pass — the dense-support
    (searchlogs-like) fast path.  Otherwise numpy's per-draw loop wins;
    the pre-sorted counts still matter there, since the binomial
    sampler caches its BTPE/inversion setup while consecutive
    ``(n, p)`` pairs repeat.  Returns float64 rows.
    """
    if n_rows < 1:
        raise ValueError("need at least one row")
    sorted_counts = np.asarray(sorted_counts, dtype=np.int64)
    if sorted_counts.size == 0:
        return np.zeros((n_rows, 0))
    if 0.0 < p < 1.0:
        # The route is a pure function of (counts, p, n_rows) — cache
        # state must never pick the path, or a seeded request would
        # stop being reproducible across process histories.  Only the
        # table-size computation is memoized (it is itself pure).
        key = _binom_key(sorted_counts, p)
        table_size = _binom_size_pool.get(key)
        if table_size is None:
            uniq = np.unique(sorted_counts)
            lo, hi = _binomial_windows(uniq, p)
            table_size = int(np.sum(hi - lo + 1))
            _pool_insert(_binom_size_pool, key, table_size)
        n_draws = n_rows * len(sorted_counts)
        if table_size <= _BINOM_TABLE_DRAW_RATIO * n_draws:
            return binomial_inverse_cdf_rows(rng, sorted_counts, p, n_rows)
    return rng.binomial(
        sorted_counts, p, size=(n_rows, len(sorted_counts))
    ).astype(np.float64)


def scatter_rows(
    values: np.ndarray, columns: np.ndarray, n_bins: int
) -> np.ndarray:
    """Place per-support-column rows into a zero-filled full-domain matrix."""
    out = np.zeros((values.shape[0], n_bins))
    out[:, columns] = values
    return out
