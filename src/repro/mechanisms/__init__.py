"""Privacy mechanisms: DP baselines, OSDP primitives, and DAWA/DAWAz.

Record-level mechanisms
    * :class:`repro.mechanisms.osdp_rr.OsdpRR` — Algorithm 1: truthful
      release of a Bernoulli(1 - e^-eps) sample of the non-sensitive
      records.

Histogram mechanisms (all consume :class:`repro.queries.histogram.HistogramInput`)
    * :class:`repro.mechanisms.laplace.LaplaceHistogram` — the epsilon-DP
      Laplace mechanism (Definition 2.5), sensitivity 2;
    * :class:`repro.mechanisms.osdp_rr.OsdpRRHistogram` — histogram over
      an OsdpRR sample;
    * :class:`repro.mechanisms.osdp_laplace.OsdpLaplaceHistogram` and
      :class:`~repro.mechanisms.osdp_laplace.OsdpLaplaceL1Histogram` —
      one-sided-noise primitives of Section 5.1 (Algorithm 2);
    * :class:`repro.mechanisms.osdp_laplace.HybridOsdpLaplace` — the
      per-bin hybrid for value-based policies (Section 6.3.3.1);
    * :class:`repro.mechanisms.suppress.SuppressHistogram` — the PDP
      baseline of Section 3.4 (vulnerable to exclusion attacks);
    * :class:`repro.mechanisms.dawa.Dawa` — the two-phase DP baseline;
    * :class:`repro.mechanisms.dawaz.DawaZ` — Algorithm 3, the paper's
      recipe applied to DAWA.
"""

from repro.mechanisms.ahp import Ahp, AhpZ
from repro.mechanisms.base import HistogramMechanism, MechanismRegistry
from repro.mechanisms.dawa import Dawa
from repro.mechanisms.dawaz import DawaZ, TwoPhaseOsdpRecipe
from repro.mechanisms.laplace import LaplaceHistogram, LaplaceMechanism
from repro.mechanisms.osdp_laplace import (
    HybridOsdpLaplace,
    OsdpLaplaceHistogram,
    OsdpLaplaceL1Histogram,
)
from repro.mechanisms.osdp_rr import OsdpRR, OsdpRRHistogram
from repro.mechanisms.partitioned import PartitionedRelease
from repro.mechanisms.suppress import Suppress, SuppressHistogram

__all__ = [
    "Ahp",
    "AhpZ",
    "Dawa",
    "DawaZ",
    "HistogramMechanism",
    "HybridOsdpLaplace",
    "LaplaceHistogram",
    "LaplaceMechanism",
    "MechanismRegistry",
    "OsdpLaplaceHistogram",
    "OsdpLaplaceL1Histogram",
    "OsdpRR",
    "OsdpRRHistogram",
    "PartitionedRelease",
    "Suppress",
    "SuppressHistogram",
    "TwoPhaseOsdpRecipe",
]
