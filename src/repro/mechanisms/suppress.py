"""``Suppress`` — the personalized-DP baseline of Section 3.4.

PDP models non-sensitive records as having privacy parameter infinity.
``Suppress`` with threshold tau drops every record whose personal
parameter is below tau (here: all sensitive records) and runs a tau-DP
computation on the remainder.  It satisfies PDP, but:

* with tau = inf it releases the non-sensitive records exactly — the
  canonical exclusion-attack-vulnerable mechanism;
* with finite tau it achieves only *tau*-freedom from exclusion attacks
  (Theorem 3.4), so Fig 10's Suppress100 buys utility at 100x weaker
  protection than the (P, 1)-OSDP competitors.

``SuppressHistogram`` is the histogram instantiation used in Fig 10:
``x_ns + Lap(2/tau)``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.guarantees import PDPGuarantee
from repro.core.policy import Policy
from repro.distributions.laplace import sample_laplace
from repro.mechanisms.base import HistogramMechanism
from repro.mechanisms.batch_sampling import laplace_rows
from repro.queries.histogram import HISTOGRAM_L1_SENSITIVITY, HistogramInput


class Suppress:
    """Record-level Suppress: drop sensitive records, tau-DP on the rest.

    ``tau=None`` models tau = inf (release non-sensitive records
    truthfully) — exactly the Threshold algorithm the paper shows is
    vulnerable to exclusion attacks.
    """

    def __init__(self, policy: Policy, tau: float | None):
        if tau is not None and tau <= 0:
            raise ValueError("tau must be positive (or None for infinity)")
        self.policy = policy
        self.tau = tau

    @property
    def guarantee(self) -> PDPGuarantee:
        tau_text = "inf" if self.tau is None else f"{self.tau:g}"
        return PDPGuarantee(
            epsilon_of=lambda r: (
                math.inf if self.policy.is_non_sensitive(r) else (self.tau or math.inf)
            ),
            description=f"Suppress(tau={tau_text})-PDP",
        )

    @property
    def exclusion_freedom_phi(self) -> float:
        """Theorem 3.4: Suppress is only tau-free from exclusion attacks."""
        return math.inf if self.tau is None else self.tau

    def retained(self, records: Iterable[object]) -> list[object]:
        """The records that survive suppression (all non-sensitive ones)."""
        return [r for r in records if self.policy.is_non_sensitive(r)]

    def output_distribution(self, db: tuple) -> dict:
        """Exact output distribution for tau = inf (for exclusion demos)."""
        if self.tau is not None:
            raise NotImplementedError(
                "exact distributions implemented for the tau=inf release only"
            )
        released = tuple(sorted(self.retained(db), key=repr))
        return {released: 1.0}


class SuppressHistogram(HistogramMechanism):
    """Fig 10's PDP competitor: ``x_ns + Lap(2/tau)``.

    Note the ``epsilon`` constructor argument of the base class is the
    *tau* of the suppress threshold — the mechanism's nominal DP budget
    on the retained records, and per Theorem 3.4 its exclusion-attack
    freedom parameter.  It is **not** an OSDP epsilon.
    """

    def __init__(
        self,
        tau: float,
        policy: Policy | None = None,
        ns_ratio: float | None = None,
    ):
        super().__init__(epsilon=tau)
        if ns_ratio is not None and not 0.0 < ns_ratio <= 1.0:
            raise ValueError("ns_ratio must lie in (0, 1]")
        self.tau = tau
        self.policy = policy
        self.ns_ratio = ns_ratio

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"suppress{self.tau:g}"

    @property
    def guarantee(self) -> PDPGuarantee:
        def epsilon_of(record: object) -> float:
            if self.policy is None or self.policy.is_non_sensitive(record):
                return math.inf
            return self.tau

        return PDPGuarantee(
            epsilon_of=epsilon_of, description=f"Suppress(tau={self.tau:g})-PDP"
        )

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        x_ns = np.asarray(hist.x_ns, dtype=float)
        scale = HISTOGRAM_L1_SENSITIVITY / self.tau
        noisy = x_ns + sample_laplace(rng, scale, size=x_ns.shape)
        noisy = np.maximum(noisy, 0.0)
        if self.ns_ratio is not None:
            noisy = noisy / self.ns_ratio
        return noisy

    def release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        if not isinstance(rng, np.random.Generator):
            return self._sequential_release_batch(hist, rng, n_trials)
        if n_trials is None:
            raise ValueError("n_trials is required with a single generator")
        scale = HISTOGRAM_L1_SENSITIVITY / self.tau
        out = laplace_rows(rng, scale, np.asarray(hist.x_ns, dtype=float), n_trials)
        np.maximum(out, 0.0, out=out)
        if self.ns_ratio is not None:
            out /= self.ns_ratio
        return out
