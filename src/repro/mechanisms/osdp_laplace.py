"""One-sided Laplace mechanisms for counting queries (Section 5.1).

Under OSDP, a one-sided neighbor replaces a sensitive record with an
arbitrary one, so counts over the *non-sensitive* records can only grow:
``x_ns <= x'_ns`` with ``||x'_ns - x_ns||_1 <= 1``.  Strictly negative
noise therefore suffices:

* :class:`OsdpLaplaceHistogram` — ``x_ns + Lap^-(1/eps)`` (Theorem 5.2),
  noise variance 1/8 that of the DP Laplace histogram at matched eps;
* :class:`OsdpLaplaceL1Histogram` — Algorithm 2: clip negatives to zero
  (exact zero counts stay exactly zero) and de-bias the surviving
  positive counts by the one-sided noise median ``ln 2 / eps``;
* :class:`HybridOsdpLaplace` — the Section 6.3.3.1 construction for
  value-based policies, where bins are purely sensitive or purely
  non-sensitive: ordinary Laplace noise on the sensitive-only bins and
  one-sided noise on the rest, composed sequentially.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.guarantees import OSDPGuarantee
from repro.core.policy import AllSensitivePolicy, Policy
from repro.distributions.laplace import sample_laplace
from repro.distributions.one_sided_laplace import OneSidedLaplace
from repro.mechanisms.base import HistogramMechanism
from repro.mechanisms.batch_sampling import one_sided_rows, scatter_rows
from repro.queries.histogram import (
    HISTOGRAM_L1_SENSITIVITY,
    HistogramInput,
    ns_support,
)


def _guarantee_for(policy: Policy | None, epsilon: float) -> OSDPGuarantee:
    return OSDPGuarantee(
        policy=policy if policy is not None else AllSensitivePolicy(),
        epsilon=epsilon,
    )


class OsdpLaplaceHistogram(HistogramMechanism):
    """``x_ns + Lap^-(1/eps)`` per bin — (P, eps)-OSDP (Theorem 5.2).

    ``ns_ratio`` (optional) divides the noisy counts by a known
    non-sensitive mass fraction — post-processing that de-biases the
    estimate toward the full histogram under value-independent
    (opt-in style) policies; see EXPERIMENTS.md.
    """

    name = "osdp_laplace"

    def __init__(
        self,
        epsilon: float,
        policy: Policy | None = None,
        ns_ratio: float | None = None,
    ):
        super().__init__(epsilon)
        if ns_ratio is not None and not 0.0 < ns_ratio <= 1.0:
            raise ValueError("ns_ratio must lie in (0, 1]")
        self.policy = policy
        self.ns_ratio = ns_ratio
        self.noise = OneSidedLaplace(scale=1.0 / epsilon)

    @property
    def guarantee(self) -> OSDPGuarantee:
        return _guarantee_for(self.policy, self.epsilon)

    @property
    def noise_variance(self) -> float:
        """``1/eps**2`` — 1/8 of the DP Laplace histogram's ``8/eps**2``."""
        return self.noise.variance

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        x_ns = np.asarray(hist.x_ns, dtype=float)
        noisy = x_ns + self.noise.sample(rng, size=x_ns.shape)
        if self.ns_ratio is not None:
            noisy = noisy / self.ns_ratio
        return noisy

    def release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        if not isinstance(rng, np.random.Generator):
            return self._sequential_release_batch(hist, rng, n_trials)
        if n_trials is None:
            raise ValueError("n_trials is required with a single generator")
        # Unclipped release: every bin gets noise, including empty ones.
        out = one_sided_rows(
            rng, self.noise.scale, np.asarray(hist.x_ns, dtype=float), n_trials
        )
        if self.ns_ratio is not None:
            out /= self.ns_ratio
        return out


class OsdpLaplaceL1Histogram(HistogramMechanism):
    """Algorithm 2 (``OsdpLaplaceL1``): clipped, de-biased one-sided noise.

    Steps: add ``Lap^-(1/eps)``; clip negatives to zero (so true zero
    counts are released as exact zeros); add back the noise median
    ``ln 2 / eps`` to the remaining positive counts to remove the
    one-sided bias.  ``debias=False`` disables step 4 (for the ablation
    bench).
    """

    name = "osdp_laplace_l1"

    def __init__(
        self,
        epsilon: float,
        policy: Policy | None = None,
        debias: bool = True,
        ns_ratio: float | None = None,
    ):
        super().__init__(epsilon)
        if ns_ratio is not None and not 0.0 < ns_ratio <= 1.0:
            raise ValueError("ns_ratio must lie in (0, 1]")
        self.policy = policy
        self.debias = debias
        self.ns_ratio = ns_ratio
        self.noise = OneSidedLaplace(scale=1.0 / epsilon)

    @property
    def guarantee(self) -> OSDPGuarantee:
        return _guarantee_for(self.policy, self.epsilon)

    @property
    def median_correction(self) -> float:
        """``-median = ln 2 / eps``, added back to positive noisy counts."""
        return -self.noise.median

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        x_ns = np.asarray(hist.x_ns, dtype=float)
        noisy = x_ns + self.noise.sample(rng, size=x_ns.shape)
        noisy[noisy < 0.0] = 0.0
        if self.debias:
            positive = noisy > 0.0
            noisy[positive] += self.median_correction
        if self.ns_ratio is not None:
            noisy = noisy / self.ns_ratio
        return noisy

    def release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        if not isinstance(rng, np.random.Generator):
            return self._sequential_release_batch(hist, rng, n_trials)
        if n_trials is None:
            raise ValueError("n_trials is required with a single generator")
        # Bins with x_ns = 0 release exactly 0 (strictly negative noise
        # is clipped and the de-bias only touches positive counts), so
        # only the support needs sampling — a large win on the sparse
        # DPBench inputs.
        x_ns = np.asarray(hist.x_ns, dtype=float)
        idx = ns_support(hist)
        noisy = one_sided_rows(rng, self.noise.scale, x_ns[idx], n_trials)
        if self.debias:
            vals = np.where(noisy > 0.0, noisy + self.median_correction, 0.0)
        else:
            vals = np.maximum(noisy, 0.0)
        if self.ns_ratio is not None:
            vals /= self.ns_ratio
        return scatter_rows(vals, idx, len(x_ns))


class HybridOsdpLaplace(HistogramMechanism):
    """Per-bin hybrid for value-based policies (Section 6.3.3.1).

    Requires ``hist.sensitive_bin_mask``: bins whose records are all
    sensitive receive ordinary Laplace noise (scale ``2/eps_dp``) on
    their true counts, all other bins receive the OsdpLaplaceL1 treatment
    (scale ``1/eps_os``) on their non-sensitive counts.  Sequential
    composition gives (P, eps_dp + eps_os)-OSDP; ``split`` apportions the
    total epsilon (default an even split).

    Falls back to plain OsdpLaplaceL1 when no mask is available.
    """

    name = "osdp_hybrid"

    def __init__(
        self, epsilon: float, policy: Policy | None = None, split: float = 0.5
    ):
        super().__init__(epsilon)
        if not 0.0 < split < 1.0:
            raise ValueError("split must lie strictly between 0 and 1")
        self.policy = policy
        self.split = split
        self.epsilon_dp = split * epsilon
        self.epsilon_os = (1.0 - split) * epsilon

    @property
    def guarantee(self) -> OSDPGuarantee:
        return _guarantee_for(self.policy, self.epsilon)

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        if hist.sensitive_bin_mask is None:
            fallback = OsdpLaplaceL1Histogram(self.epsilon, policy=self.policy)
            return fallback.release(hist, rng)
        mask = np.asarray(hist.sensitive_bin_mask, dtype=bool)
        x = np.asarray(hist.x, dtype=float)

        estimate = OsdpLaplaceL1Histogram(
            self.epsilon_os, policy=self.policy
        ).release(hist, rng)

        n_sensitive = int(mask.sum())
        if n_sensitive:
            dp_scale = HISTOGRAM_L1_SENSITIVITY / self.epsilon_dp
            noisy = x[mask] + sample_laplace(rng, dp_scale, size=n_sensitive)
            estimate[mask] = np.maximum(noisy, 0.0)
        return estimate


def theorem_5_1_crossover(n_records: int, n_bins: int, epsilon: float) -> bool:
    """True when Theorem 5.1 predicts OsdpRR loses to the Laplace mechanism.

    The condition ``n * eps > 2 d * e^eps`` (equation 2): suppression
    error of even a fully-non-sensitive OsdpRR release exceeds the
    Laplace mechanism's expected L1 error.
    """
    return n_records * epsilon > 2.0 * n_bins * math.exp(epsilon)
