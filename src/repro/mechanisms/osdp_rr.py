"""``OsdpRR`` — truthful release of non-sensitive records (Algorithm 1).

Each non-sensitive record is released independently with probability
``1 - e^-eps``; sensitive records are always suppressed.  Theorem 4.1
shows this satisfies (P, eps)-OSDP: suppression of a sensitive record is
indistinguishable (within ``e^eps``) from the chance suppression of any
replacement record.

Table 1's release rates fall out of the retention probability:
eps = 1.0 -> ~63%, eps = 0.5 -> ~39%, eps = 0.1 -> ~9.5%.

``OsdpRRHistogram`` runs a histogram query over the released sample.
On histogram inputs the per-record Bernoulli sampling is exactly
binomial thinning of the non-sensitive counts, which is how it is
implemented.  Optional inverse-probability scaling (dividing by the
retention probability) is unbiased for ``x_ns`` and is pure
post-processing, hence privacy-free; the paper's plots use the raw
(unscaled) sample, which is the default.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.accountant import PrivacyAccountant
from repro.core.guarantees import OSDPGuarantee
from repro.core.policy import Policy
from repro.mechanisms.base import HistogramMechanism
from repro.mechanisms.batch_sampling import binomial_support_rows, scatter_rows
from repro.queries.histogram import HistogramInput, ns_support_sorted


def release_probability(epsilon: float) -> float:
    """Retention probability ``1 - e^-eps`` of Algorithm 1."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return 1.0 - math.exp(-epsilon)


class OsdpRR:
    """Algorithm 1: sample non-sensitive records with prob ``1 - e^-eps``."""

    def __init__(self, policy: Policy, epsilon: float):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.policy = policy
        self.epsilon = epsilon

    @property
    def retention_probability(self) -> float:
        return release_probability(self.epsilon)

    @property
    def guarantee(self) -> OSDPGuarantee:
        return OSDPGuarantee(policy=self.policy, epsilon=self.epsilon)

    def sample(
        self,
        records: Iterable[object],
        rng: np.random.Generator,
        accountant: PrivacyAccountant | None = None,
    ) -> list[object]:
        """The released true-data sample ``S`` (Algorithm 1, lines 1-7)."""
        if accountant is not None:
            accountant.charge(self.policy, self.epsilon, label="OsdpRR")
        p = self.retention_probability
        released = []
        for record in records:
            if self.policy.is_non_sensitive(record) and rng.random() < p:
                released.append(record)
        return released

    def output_distribution(self, db: Sequence) -> dict:
        """Exact output distribution over subsets (for the verifier).

        Outputs are frozen multisets encoded as sorted tuples of
        (index, record) pairs — released records keep their positions so
        the distribution enumerates all 2^k subsets of non-sensitive
        positions.  Exponential in the database size; testing only.
        """
        p = self.retention_probability
        ns_positions = [
            i for i, r in enumerate(db) if self.policy.is_non_sensitive(r)
        ]
        dist: dict = {}
        for mask in range(2 ** len(ns_positions)):
            chosen = [
                ns_positions[j]
                for j in range(len(ns_positions))
                if mask >> j & 1
            ]
            prob = p ** len(chosen) * (1 - p) ** (len(ns_positions) - len(chosen))
            output = tuple(sorted((i, db[i]) for i in chosen))
            dist[output] = dist.get(output, 0.0) + prob
        return dist


class OsdpRRHistogram(HistogramMechanism):
    """Histogram over an OsdpRR sample (the §5.1 primitive).

    Releases ``Binomial(x_ns, 1 - e^-eps)``; with ``scaled=True`` the
    counts are divided by the retention probability (unbiased for
    ``x_ns``, post-processing only).  Expected L1 error (unscaled) is
    ``||x_s||_1 + e^-eps ||x_ns||_1`` — Theorem 5.1's bound.

    ``ns_ratio`` additionally divides the counts by a known (or
    privately estimated) non-sensitive mass fraction, making the
    estimate unbiased for the *full* histogram under opt-in/opt-out
    policies whose sampling is value-independent.  Post-processing only;
    see EXPERIMENTS.md (DPBench reproduction decisions).
    """

    name = "osdp_rr"

    def __init__(
        self,
        epsilon: float,
        policy: Policy | None = None,
        scaled: bool = False,
        ns_ratio: float | None = None,
    ):
        super().__init__(epsilon)
        if ns_ratio is not None and not 0.0 < ns_ratio <= 1.0:
            raise ValueError("ns_ratio must lie in (0, 1]")
        self.scaled = scaled
        self.ns_ratio = ns_ratio
        self.policy = policy

    @property
    def retention_probability(self) -> float:
        return release_probability(self.epsilon)

    @property
    def guarantee(self) -> OSDPGuarantee:
        from repro.core.policy import AllSensitivePolicy

        policy = self.policy if self.policy is not None else AllSensitivePolicy()
        return OSDPGuarantee(policy=policy, epsilon=self.epsilon)

    def expected_l1_error(self, hist: HistogramInput) -> float:
        """Suppression error: all sensitive mass plus ``e^-eps`` of x_ns."""
        sensitive_mass = float(hist.x_sensitive.sum())
        return sensitive_mass + math.exp(-self.epsilon) * float(hist.x_ns.sum())

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        counts = rng.binomial(
            hist.x_ns.astype(np.int64), self.retention_probability
        ).astype(float)
        if self.scaled:
            counts = counts / self.retention_probability
        if self.ns_ratio is not None:
            counts = counts / self.ns_ratio
        return counts

    def release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        if not isinstance(rng, np.random.Generator):
            return self._sequential_release_batch(hist, rng, n_trials)
        if n_trials is None:
            raise ValueError("n_trials is required with a single generator")
        # Binomial thinning of an empty bin is deterministically 0, so
        # only the nonzero x_ns bins are sampled; sorting the counts
        # lets numpy reuse its per-count sampler setup.
        cols, sorted_counts = ns_support_sorted(hist)
        vals = binomial_support_rows(
            rng, sorted_counts, self.retention_probability, n_trials
        )
        if self.scaled:
            vals /= self.retention_probability
        if self.ns_ratio is not None:
            vals /= self.ns_ratio
        return scatter_rows(vals, cols, len(np.asarray(hist.x_ns)))
