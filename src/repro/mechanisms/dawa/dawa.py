"""DAWA: private partition (stage 1) + noisy uniform expansion (stage 2).

The budget splits as ``eps1 = split * eps`` for partition selection and
``eps2 = (1 - split) * eps`` for bucket estimation; sequential
composition gives ``eps``-DP overall.  The per-bucket penalty passed to
the partition DP is ``penalty_factor * 2 / eps2`` — the expected L1 cost
of one more bucket's Laplace noise in stage 2 — so the partition
balances deviation bias against estimation noise exactly as the original
algorithm does.

``release_with_partition`` also returns the chosen buckets; DAWAz's
post-processing redistributes bucket mass and needs them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.guarantees import DPGuarantee
from repro.mechanisms.base import HistogramMechanism
from repro.mechanisms.dawa.estimate import (
    uniform_bucket_estimate,
    uniform_bucket_estimate_batch,
)
from repro.mechanisms.dawa.partition import (
    Bucket,
    DyadicScaffold,
    clip_buckets_array,
    dyadic_partition_array,
    optimal_partition_batch,
)
from repro.queries.histogram import HistogramInput


@dataclass(frozen=True)
class DawaResult:
    """A DAWA release together with the partition that produced it.

    ``buckets`` holds ``[start, end)`` rows — an ``(k, 2)`` int64 array
    on the fast path, or an equivalent list of tuples; every consumer
    accepts both.
    """

    estimate: np.ndarray
    buckets: "np.ndarray | list[Bucket]"


class Dawa(HistogramMechanism):
    """The dyadic DAWA variant (see DESIGN.md §5) — epsilon-DP."""

    name = "dawa"

    def __init__(
        self,
        epsilon: float,
        split: float = 0.5,
        penalty_factor: float = 1.0,
    ):
        super().__init__(epsilon)
        if not 0.0 < split < 1.0:
            raise ValueError("split must lie strictly between 0 and 1")
        if penalty_factor <= 0:
            raise ValueError("penalty_factor must be positive")
        self.split = split
        self.penalty_factor = penalty_factor
        self.epsilon1 = split * epsilon
        self.epsilon2 = (1.0 - split) * epsilon

    @property
    def guarantee(self) -> DPGuarantee:
        return DPGuarantee(epsilon=self.epsilon)

    @property
    def bucket_penalty(self) -> float:
        """Stage-2 noise cost charged per bucket in the partition DP."""
        return self.penalty_factor * 2.0 / self.epsilon2

    def release_with_partition(
        self,
        hist: HistogramInput,
        rng: np.random.Generator,
        scaffold: DyadicScaffold | None = None,
    ) -> DawaResult:
        """One release; pass a scaffold to reuse stage 1's exact costs."""
        x = np.asarray(hist.x, dtype=float)
        buckets = dyadic_partition_array(
            x,
            self.epsilon1,
            rng,
            bucket_penalty=self.bucket_penalty,
            scaffold=scaffold,
        )
        estimate = uniform_bucket_estimate(x, buckets, self.epsilon2, rng)
        return DawaResult(estimate=estimate, buckets=buckets)

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        return self.release_with_partition(hist, rng).estimate

    def release_with_partition_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator,
        n_trials: int,
        scaffold: DyadicScaffold | None = None,
    ) -> list[DawaResult]:
        """``n_trials`` independent releases with both stages batched.

        Stage 1: the exact dyadic deviation costs are data-dependent but
        trial-independent (one scaffold); all trials' noisy cost levels
        are sampled as ``(n_trials, n_intervals)`` matrices and the
        partition Bellman recursion runs once across trials
        (:func:`repro.mechanisms.dawa.partition.optimal_partition_batch`).

        Stage 2: trials are grouped by their chosen partition — stage 1
        is strongly data-driven, so distinct trials frequently land on
        the same bucket set — and each group expands in one
        reduceat/Laplace-matrix/repeat pass
        (:func:`repro.mechanisms.dawa.estimate.uniform_bucket_estimate_batch`).
        Trial order is preserved in the returned list; only the noise
        stream order differs from the per-trial loop (batch-mode
        contract).
        """
        x = np.asarray(hist.x, dtype=float)
        if scaffold is None:
            scaffold = DyadicScaffold(x)
        costs = scaffold.noisy_costs_batch(self.epsilon1, rng, n_trials)
        partitions = optimal_partition_batch(costs, self.bucket_penalty)
        buckets_by_trial = [
            clip_buckets_array(padded, scaffold.n_original)
            for padded in partitions
        ]
        groups: dict[bytes, list[int]] = {}
        for trial, buckets in enumerate(buckets_by_trial):
            groups.setdefault(buckets.tobytes(), []).append(trial)
        results: list[DawaResult | None] = [None] * n_trials
        for trials in groups.values():
            buckets = buckets_by_trial[trials[0]]
            rows = uniform_bucket_estimate_batch(
                x, buckets, self.epsilon2, rng, len(trials)
            )
            for row, trial in enumerate(trials):
                results[trial] = DawaResult(
                    estimate=rows[row], buckets=buckets
                )
        return results

    def release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        if not isinstance(rng, np.random.Generator):
            return self._sequential_release_batch(hist, rng, n_trials)
        if n_trials is None:
            raise ValueError("n_trials is required with a single generator")
        return np.stack(
            [
                result.estimate
                for result in self.release_with_partition_batch(
                    hist, rng, n_trials
                )
            ]
        )
