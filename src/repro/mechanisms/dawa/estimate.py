"""DAWA stage 2: noisy bucket totals expanded over their bins.

Given the stage-1 partition, each bucket's total count is released with
``Lap(2/eps2)`` noise (one record replacement changes at most two bucket
totals by one each) and spread uniformly across the bucket's bins —
uniform expansion is the workload-optimal estimator for the histogram
(identity) workload the paper evaluates.

``hierarchical_estimate`` is the range-workload extension: a binary tree
of noisy subtree totals with inverse-variance (Honaker-style) weighted
averaging on the way down, provided for the workload experiments beyond
the paper's identity setting.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.laplace import sample_laplace
from repro.mechanisms.dawa.partition import buckets_tile_domain

Bucket = tuple[int, int]

BUCKET_TOTAL_SENSITIVITY = 2.0


def uniform_bucket_estimate(
    x: np.ndarray,
    buckets: list[Bucket],
    epsilon2: float,
    rng: np.random.Generator,
    clip_negative_totals: bool = True,
) -> np.ndarray:
    """Noisy bucket totals, uniformly expanded.  eps2-DP.

    Vectorized: bucket totals via ``np.add.reduceat`` over the bucket
    starts (the partition tiles the domain), one Laplace draw per bucket
    in a single call, and ``np.repeat`` for the uniform expansion —
    no per-bucket Python loop.  ``buckets`` may be a list of tuples or
    an ``(k, 2)`` array.
    """
    if epsilon2 <= 0:
        raise ValueError("epsilon2 must be positive")
    x = np.asarray(x, dtype=float)
    if len(buckets) == 0:
        return np.zeros_like(x)
    scale = BUCKET_TOTAL_SENSITIVITY / epsilon2
    arr = np.asarray(buckets, dtype=np.int64).reshape(-1, 2)
    starts, ends = arr[:, 0], arr[:, 1]
    widths = ends - starts
    if buckets_tile_domain(starts, ends, len(x)):
        totals = np.add.reduceat(x, starts)
        totals += sample_laplace(rng, scale, size=len(totals))
        if clip_negative_totals:
            np.maximum(totals, 0.0, out=totals)
        return np.repeat(totals / widths, widths)
    # Gapped or overlapping buckets (not produced by stage 1, but the
    # public API allows them): per-slice assignment as before.
    estimate = np.zeros_like(x)
    noise = sample_laplace(rng, scale, size=len(arr))
    for (start, end), eps_noise in zip(buckets, noise):
        total = float(x[start:end].sum()) + float(eps_noise)
        if clip_negative_totals and total < 0.0:
            total = 0.0
        estimate[start:end] = total / (end - start)
    return estimate


def uniform_bucket_estimate_batch(
    x: np.ndarray,
    buckets: list[Bucket],
    epsilon2: float,
    rng: np.random.Generator,
    n_rows: int,
    clip_negative_totals: bool = True,
) -> np.ndarray:
    """``n_rows`` independent stage-2 releases over one shared partition.

    The bucket totals are data, not noise — one ``np.add.reduceat``
    serves every trial — so the whole group costs a single
    ``(n_rows, n_buckets)`` Laplace matrix and one axis-1 ``np.repeat``
    expansion.  This is the kernel behind grouped stage 2: trials whose
    stage-1 partitions coincide (common at paper-scale epsilon, where
    stage 1 is strongly data-driven) share everything but their noise.
    Each row is distributed exactly as one :func:`uniform_bucket_estimate`
    draw; the streams differ (batch-mode contract).
    """
    if n_rows < 1:
        raise ValueError("need at least one row")
    if epsilon2 <= 0:
        raise ValueError("epsilon2 must be positive")
    x = np.asarray(x, dtype=float)
    if len(buckets) == 0:
        return np.zeros((n_rows, len(x)))
    arr = np.asarray(buckets, dtype=np.int64).reshape(-1, 2)
    starts, ends = arr[:, 0], arr[:, 1]
    widths = ends - starts
    if not buckets_tile_domain(starts, ends, len(x)):
        return np.stack(
            [
                uniform_bucket_estimate(
                    x, buckets, epsilon2, rng, clip_negative_totals
                )
                for _ in range(n_rows)
            ]
        )
    scale = BUCKET_TOTAL_SENSITIVITY / epsilon2
    totals = np.add.reduceat(x, starts)
    noisy = totals + sample_laplace(rng, scale, size=(n_rows, len(totals)))
    if clip_negative_totals:
        np.maximum(noisy, 0.0, out=noisy)
    noisy /= widths
    return np.repeat(noisy, widths, axis=1)


class HierarchicalHistogram:
    """HB-style hierarchy of noisy counts for range workloads.

    A b-ary tree of interval sums over the domain, each level charged
    ``epsilon / n_levels`` (sensitivity 2 per level under the bounded
    model).  Range queries are answered by the canonical decomposition
    into at most ``b * log_b(n)`` tree nodes, which is where the
    hierarchy beats per-bin noise: prefix/range error grows
    polylogarithmically rather than with the range length.

    Provided as the range-workload extension of DAWA's stage 2 (the
    paper's experiments use the identity workload, where uniform bucket
    expansion is the right estimator).
    """

    def __init__(self, epsilon: float, branching: int = 16):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if branching < 2:
            raise ValueError("branching factor must be at least 2")
        self.epsilon = epsilon
        self.branching = branching
        self._levels: list[np.ndarray] | None = None  # leaves first
        self._n: int | None = None
        self._size: int | None = None

    def fit(self, x: np.ndarray, rng: np.random.Generator) -> "HierarchicalHistogram":
        x = np.asarray(x, dtype=float)
        self._n = len(x)
        size = 1
        while size < self._n:
            size *= self.branching
        self._size = size
        padded = np.zeros(size)
        padded[: self._n] = x

        widths = []
        width = 1
        while width <= size:
            widths.append(width)
            width *= self.branching
        eps_per_level = self.epsilon / len(widths)
        scale = BUCKET_TOTAL_SENSITIVITY / eps_per_level
        self._levels = []
        for width in widths:
            sums = padded.reshape(-1, width).sum(axis=1)
            self._levels.append(sums + sample_laplace(rng, scale, size=len(sums)))
        return self

    def _require_fit(self) -> None:
        if self._levels is None:
            raise RuntimeError("call fit() before querying")

    def range_query(self, lo: int, hi: int) -> float:
        """Noisy answer to ``sum(x[lo:hi])`` via node decomposition."""
        self._require_fit()
        if not 0 <= lo < hi <= self._n:  # type: ignore[operator]
            raise ValueError(f"invalid range ({lo}, {hi})")
        return self._answer(lo, hi, len(self._levels) - 1, 0)  # type: ignore[arg-type]

    def _answer(self, lo: int, hi: int, level: int, index: int) -> float:
        width = self.branching**level
        start = index * width
        end = start + width
        if lo <= start and end <= hi:
            return float(self._levels[level][index])  # type: ignore[index]
        if level == 0:
            # Partially-covered leaf can't happen: leaves have width 1.
            raise AssertionError("unreachable: leaf partially covered")
        total = 0.0
        child_width = width // self.branching
        first_child = index * self.branching
        for child in range(first_child, first_child + self.branching):
            c_start = child * child_width
            c_end = c_start + child_width
            if c_end <= lo or c_start >= hi:
                continue
            total += self._answer(max(lo, c_start), min(hi, c_end), level - 1, child)
        return total

    def leaf_estimates(self) -> np.ndarray:
        """Per-bin estimates (the raw noisy leaves, trimmed to n)."""
        self._require_fit()
        return self._levels[0][: self._n].copy()  # type: ignore[index]


def hierarchical_estimate(
    x: np.ndarray, epsilon: float, rng: np.random.Generator, branching: int = 16
) -> np.ndarray:
    """Convenience wrapper: fit a hierarchy and return leaf estimates."""
    return HierarchicalHistogram(epsilon, branching=branching).fit(x, rng).leaf_estimates()
