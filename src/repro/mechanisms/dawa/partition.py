"""DAWA stage 1: private data-aware partition selection.

The partition quality of a bucket ``b`` is its L1 deviation cost
``dev(b) = min_c sum_{i in b} |x_i - c|`` (minimized by the median): the
bias a uniform within-bucket estimate incurs.  Stage 1 picks a partition
minimizing ``sum_b [dev(b) + penalty]`` where the per-bucket penalty
models stage 2's noise cost.

To make the selection private we follow the original DAWA's
power-of-two restriction, but over the *aligned* dyadic tree: candidate
buckets are the nodes of a binary tree over the (zero-padded) domain.
Each bin belongs to exactly one interval per level, and ``dev`` is
1-Lipschitz in each count, so a bounded-DP replacement (two bins change
by one) perturbs the full cost vector by at most 2 per level.  Adding
``Lap(2 * n_levels / eps1)`` noise to every interval cost therefore
yields an ``eps1``-DP view of all costs, after which the partition
choice is post-processing: an exact bottom-up dynamic program chooses
split-vs-merge at every node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.laplace import sample_laplace

Bucket = tuple[int, int]  # half-open [start, end)


def interval_deviation_cost(values: np.ndarray) -> float:
    """``min_c sum |v - c|``, attained at the median."""
    if len(values) == 0:
        raise ValueError("cannot compute deviation of an empty interval")
    med = float(np.median(values))
    return float(np.abs(np.asarray(values, dtype=float) - med).sum())


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


@dataclass(frozen=True)
class DyadicCosts:
    """Noisy deviation costs for every dyadic interval.

    ``levels[k]`` holds the costs of intervals of length ``2**k`` in
    left-to-right order; level 0 (singletons) has exact zero cost — the
    deviation of a single bin is identically zero, independent of the
    data, so it needs no noise and no budget.
    """

    levels: tuple[np.ndarray, ...]

    @property
    def n(self) -> int:
        return len(self.levels[0])

    def cost(self, level: int, index: int) -> float:
        return float(self.levels[level][index])


def noisy_dyadic_costs(
    x: np.ndarray, epsilon1: float, rng: np.random.Generator
) -> DyadicCosts:
    """eps1-DP noisy L1-deviation costs for all aligned dyadic intervals."""
    if epsilon1 <= 0:
        raise ValueError("epsilon1 must be positive")
    x = np.asarray(x, dtype=float)
    n = _next_power_of_two(len(x))
    padded = np.zeros(n)
    padded[: len(x)] = x

    n_levels = int(np.log2(n)) + 1
    noisy_levels = n_levels - 1  # level 0 is data-independent
    scale = 2.0 * max(noisy_levels, 1) / epsilon1

    levels: list[np.ndarray] = [np.zeros(n)]
    for level in range(1, n_levels):
        width = 2**level
        rows = padded.reshape(-1, width)
        medians = np.median(rows, axis=1, keepdims=True)
        costs = np.abs(rows - medians).sum(axis=1)
        costs += sample_laplace(rng, scale, size=len(costs))
        # True deviation costs are non-negative; clipping is
        # post-processing and prevents the partition DP's min-selection
        # from accumulating spuriously negative noise down the tree
        # (which would shatter smooth regions into singleton buckets).
        np.maximum(costs, 0.0, out=costs)
        levels.append(costs)
    return DyadicCosts(levels=tuple(levels))


def optimal_dyadic_partition(
    costs: DyadicCosts, bucket_penalty: float
) -> list[Bucket]:
    """Exact DP over the dyadic tree: minimize sum of cost + penalty.

    Post-processing of the noisy costs.  For each node, keeping it as a
    single bucket costs ``noisy_dev + penalty``; splitting costs the sum
    of the children's optima.  Returns the chosen buckets left to right
    over the padded domain.
    """
    if bucket_penalty < 0:
        raise ValueError("bucket_penalty must be non-negative")
    n = costs.n
    n_levels = len(costs.levels)

    # best[level][i] = optimal cost for the subtree rooted at interval i
    # of the given level; keep[level][i] = True when the node stays whole.
    best: list[np.ndarray] = [
        np.asarray(costs.levels[0]) + bucket_penalty
    ]
    keep: list[np.ndarray] = [np.ones(n, dtype=bool)]
    for level in range(1, n_levels):
        whole = np.asarray(costs.levels[level]) + bucket_penalty
        split = best[level - 1][0::2] + best[level - 1][1::2]
        level_keep = whole <= split
        level_best = np.where(level_keep, whole, split)
        best.append(level_best)
        keep.append(level_keep)

    buckets: list[Bucket] = []

    def descend(level: int, index: int) -> None:
        if keep[level][index]:
            width = 2**level
            buckets.append((index * width, (index + 1) * width))
        else:
            descend(level - 1, 2 * index)
            descend(level - 1, 2 * index + 1)

    descend(n_levels - 1, 0)
    buckets.sort()
    return buckets


def _clip_buckets(buckets: list[Bucket], n: int) -> list[Bucket]:
    """Restrict buckets of the padded domain to the original length."""
    clipped = []
    for start, end in buckets:
        if start >= n:
            continue
        clipped.append((start, min(end, n)))
    return clipped


def dyadic_partition(
    x: np.ndarray,
    epsilon1: float,
    rng: np.random.Generator,
    bucket_penalty: float,
) -> list[Bucket]:
    """Full stage 1: noisy costs + exact partition DP, clipped to len(x)."""
    costs = noisy_dyadic_costs(x, epsilon1, rng)
    buckets = optimal_dyadic_partition(costs, bucket_penalty)
    return _clip_buckets(buckets, len(np.asarray(x)))


def validate_partition(buckets: list[Bucket], n: int) -> None:
    """Raise unless buckets exactly tile ``[0, n)`` in order."""
    cursor = 0
    for start, end in buckets:
        if start != cursor or end <= start:
            raise ValueError(f"buckets do not tile the domain at {start}")
        cursor = end
    if cursor != n:
        raise ValueError(f"buckets cover [0, {cursor}), expected [0, {n})")
