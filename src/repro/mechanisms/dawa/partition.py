"""DAWA stage 1: private data-aware partition selection.

The partition quality of a bucket ``b`` is its L1 deviation cost
``dev(b) = min_c sum_{i in b} |x_i - c|`` (minimized by the median): the
bias a uniform within-bucket estimate incurs.  Stage 1 picks a partition
minimizing ``sum_b [dev(b) + penalty]`` where the per-bucket penalty
models stage 2's noise cost.

To make the selection private we follow the original DAWA's
power-of-two restriction, but over the *aligned* dyadic tree: candidate
buckets are the nodes of a binary tree over the (zero-padded) domain.
Each bin belongs to exactly one interval per level, and ``dev`` is
1-Lipschitz in each count, so a bounded-DP replacement (two bins change
by one) perturbs the full cost vector by at most 2 per level.  Adding
``Lap(2 * n_levels / eps1)`` noise to every interval cost therefore
yields an ``eps1``-DP view of all costs, after which the partition
choice is post-processing: an exact bottom-up dynamic program chooses
split-vs-merge at every node.

Performance notes.  The exact deviation costs are data-dependent but
*trial-independent*, so :class:`DyadicScaffold` computes them once
(shared zero-padding, prefix sums for interval totals, and
``np.partition`` lower-half sums instead of per-row medians: for an
even-width sorted interval, ``dev = total - 2 * sum(lower half)``) and
multi-trial callers reuse the scaffold, paying only fresh noise per
trial.  The partition walk is an iterative stack descent, and the
bucket clipping/validation helpers are vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.laplace import sample_laplace

Bucket = tuple[int, int]  # half-open [start, end)


def interval_deviation_cost(values: np.ndarray) -> float:
    """``min_c sum |v - c|``, attained at the median."""
    if len(values) == 0:
        raise ValueError("cannot compute deviation of an empty interval")
    med = float(np.median(values))
    return float(np.abs(np.asarray(values, dtype=float) - med).sum())


def _next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (bit arithmetic, no loop)."""
    return 1 << max(0, n - 1).bit_length()


@dataclass(frozen=True)
class DyadicCosts:
    """Noisy deviation costs for every dyadic interval.

    ``levels[k]`` holds the costs of intervals of length ``2**k`` in
    left-to-right order; level 0 (singletons) has exact zero cost — the
    deviation of a single bin is identically zero, independent of the
    data, so it needs no noise and no budget.
    """

    levels: tuple[np.ndarray, ...]

    @property
    def n(self) -> int:
        return len(self.levels[0])

    def cost(self, level: int, index: int) -> float:
        return float(self.levels[level][index])


@dataclass(frozen=True)
class BatchDyadicCosts:
    """Noisy dyadic costs for many trials at once.

    ``levels[k]`` is an ``(n_trials, n_intervals_k)`` matrix — trial
    ``t``'s costs for level ``k`` in row ``t``.  :meth:`trial` views one
    row set as an ordinary :class:`DyadicCosts`, which is how the exact
    per-trial equivalence of the batched partition DP is tested.
    """

    levels: tuple[np.ndarray, ...]

    @property
    def n_trials(self) -> int:
        return self.levels[0].shape[0]

    @property
    def n(self) -> int:
        return self.levels[0].shape[1]

    def trial(self, t: int) -> DyadicCosts:
        return DyadicCosts(levels=tuple(level[t] for level in self.levels))


class DyadicScaffold:
    """Exact dyadic deviation costs, reusable across noise trials.

    For an interval of even width ``w`` with sorted values ``v``,
    ``dev = sum_{i >= w/2} v_i - sum_{i < w/2} v_i = total - 2 * lower``
    where ``lower`` is the sum of the smallest ``w/2`` values (any value
    between the two central order statistics is an L1 median).
    ``np.partition`` delivers the lower half without a full sort, and
    the interval totals at every level come from one shared prefix-sum
    array over the padded domain.
    """

    def __init__(self, x: np.ndarray):
        x = np.asarray(x, dtype=float).reshape(-1)
        self.n_original = len(x)
        n = _next_power_of_two(self.n_original)
        padded = np.zeros(n)
        padded[: self.n_original] = x
        self.n_padded = n
        self.n_levels = int(np.log2(n)) + 1

        prefix = np.concatenate([[0.0], np.cumsum(padded)])
        levels: list[np.ndarray] = [np.zeros(n)]
        for level in range(1, self.n_levels):
            width = 1 << level
            half = width >> 1
            rows = padded.reshape(-1, width)
            part = np.partition(rows, half - 1, axis=1)
            lower = part[:, :half].sum(axis=1)
            totals = np.diff(prefix[::width])
            levels.append(totals - 2.0 * lower)
        self.exact_levels: tuple[np.ndarray, ...] = tuple(levels)

    def noisy_costs(
        self, epsilon1: float, rng: np.random.Generator
    ) -> DyadicCosts:
        """Fresh ``eps1``-DP noisy costs over the precomputed exact ones."""
        if epsilon1 <= 0:
            raise ValueError("epsilon1 must be positive")
        noisy_levels = self.n_levels - 1  # level 0 is data-independent
        scale = 2.0 * max(noisy_levels, 1) / epsilon1
        levels: list[np.ndarray] = [self.exact_levels[0]]
        for exact in self.exact_levels[1:]:
            costs = exact + sample_laplace(rng, scale, size=len(exact))
            # True deviation costs are non-negative; clipping is
            # post-processing and prevents the partition DP's
            # min-selection from accumulating spuriously negative noise
            # down the tree (which would shatter smooth regions into
            # singleton buckets).
            np.maximum(costs, 0.0, out=costs)
            levels.append(costs)
        return DyadicCosts(levels=tuple(levels))

    def noisy_costs_batch(
        self, epsilon1: float, rng: np.random.Generator, n_trials: int
    ) -> BatchDyadicCosts:
        """``n_trials`` independent noisy cost sets in one sampling pass.

        One ``(n_trials, n_intervals)`` Laplace matrix per level instead
        of ``n_trials`` per-level sampler calls; each row is distributed
        exactly as one :meth:`noisy_costs` draw (the streams differ —
        batch mode's documented contract).
        """
        if epsilon1 <= 0:
            raise ValueError("epsilon1 must be positive")
        if n_trials < 1:
            raise ValueError("need at least one trial")
        noisy_levels = self.n_levels - 1
        scale = 2.0 * max(noisy_levels, 1) / epsilon1
        levels: list[np.ndarray] = [
            np.broadcast_to(self.exact_levels[0], (n_trials, self.n_padded))
        ]
        for exact in self.exact_levels[1:]:
            costs = exact + sample_laplace(
                rng, scale, size=(n_trials, len(exact))
            )
            np.maximum(costs, 0.0, out=costs)
            levels.append(costs)
        return BatchDyadicCosts(levels=tuple(levels))


def noisy_dyadic_costs(
    x: np.ndarray, epsilon1: float, rng: np.random.Generator
) -> DyadicCosts:
    """eps1-DP noisy L1-deviation costs for all aligned dyadic intervals."""
    return DyadicScaffold(x).noisy_costs(epsilon1, rng)


def _select_buckets(keep: Sequence[np.ndarray]) -> np.ndarray:
    """Top-down bucket selection from per-level keep/split decisions.

    One vectorized pass per level: nodes whose subtree optimum keeps
    them whole emit buckets, the rest expand into their children for
    the next level down.  ``keep[level][i]`` is True when interval ``i``
    of that level stays a single bucket.
    """
    n_levels = len(keep)
    pieces: list[np.ndarray] = []
    active = np.zeros(1, dtype=np.int64)
    for level in range(n_levels - 1, -1, -1):
        if active.size == 0:
            break
        kept_mask = keep[level][active]
        kept = active[kept_mask]
        if kept.size:
            width = 1 << level
            pieces.append(
                np.stack([kept * width, (kept + 1) * width], axis=1)
            )
        children = active[~kept_mask]
        active = np.repeat(children * 2, 2)
        active[1::2] += 1
    arr = np.concatenate(pieces) if pieces else np.empty((0, 2), dtype=np.int64)
    return arr[np.argsort(arr[:, 0], kind="stable")]


def optimal_partition_array(
    costs: DyadicCosts, bucket_penalty: float
) -> np.ndarray:
    """Exact DP over the dyadic tree: minimize sum of cost + penalty.

    Post-processing of the noisy costs.  For each node, keeping it as a
    single bucket costs ``noisy_dev + penalty``; splitting costs the sum
    of the children's optima.  Returns the chosen buckets as an
    ``(k, 2)`` int64 array of ``[start, end)`` rows, left to right over
    the padded domain.

    Both the bottom-up DP and the top-down selection walk are level
    sweeps over whole index arrays — no per-node Python dispatch, which
    is what makes thousand-bucket partitions cheap.
    """
    if bucket_penalty < 0:
        raise ValueError("bucket_penalty must be non-negative")
    n = costs.n
    n_levels = len(costs.levels)

    # best[level][i] = optimal cost for the subtree rooted at interval i
    # of the given level; keep[level][i] = True when the node stays whole.
    best: list[np.ndarray] = [
        np.asarray(costs.levels[0]) + bucket_penalty
    ]
    keep: list[np.ndarray] = [np.ones(n, dtype=bool)]
    for level in range(1, n_levels):
        whole = np.asarray(costs.levels[level]) + bucket_penalty
        split = best[level - 1][0::2] + best[level - 1][1::2]
        level_keep = whole <= split
        level_best = np.where(level_keep, whole, split)
        best.append(level_best)
        keep.append(level_keep)

    return _select_buckets(keep)


def optimal_partition_batch(
    costs: BatchDyadicCosts, bucket_penalty: float
) -> list[np.ndarray]:
    """The partition DP for every trial in one bottom-up sweep.

    The Bellman recursion runs on ``(n_trials, n_intervals)`` matrices —
    the per-trial float operations are elementwise-identical to
    :func:`optimal_partition_array` on that trial's cost rows, so the
    chosen buckets match the per-trial path exactly.  Only the final
    top-down selection (whose shape is data-dependent) walks per trial.
    Returns one ``(k_t, 2)`` bucket array per trial, over the padded
    domain.
    """
    if bucket_penalty < 0:
        raise ValueError("bucket_penalty must be non-negative")
    n_levels = len(costs.levels)
    best = costs.levels[0] + bucket_penalty  # (n_trials, n)
    keep: list[np.ndarray] = [np.ones_like(best, dtype=bool)]
    for level in range(1, n_levels):
        whole = costs.levels[level] + bucket_penalty
        split = best[:, 0::2] + best[:, 1::2]
        level_keep = whole <= split
        best = np.where(level_keep, whole, split)
        keep.append(level_keep)
    return [
        _select_buckets([level_keep[t] for level_keep in keep])
        for t in range(costs.n_trials)
    ]


def optimal_dyadic_partition(
    costs: DyadicCosts, bucket_penalty: float
) -> list[Bucket]:
    """List-of-tuples form of :func:`optimal_partition_array`."""
    return [
        tuple(pair)
        for pair in optimal_partition_array(costs, bucket_penalty).tolist()
    ]


def clip_buckets_array(arr: np.ndarray, n: int) -> np.ndarray:
    """Restrict buckets of the padded domain to the original length."""
    arr = np.asarray(arr, dtype=np.int64).reshape(-1, 2)
    kept = arr[arr[:, 0] < n]
    np.minimum(kept[:, 1], n, out=kept[:, 1])
    return kept


# Backwards-compatible private alias (pre-batch-path name).
_clip_buckets_array = clip_buckets_array


def _clip_buckets(buckets: list[Bucket], n: int) -> list[Bucket]:
    """List-of-tuples form of :func:`_clip_buckets_array`."""
    if not buckets:
        return []
    return [
        tuple(pair)
        for pair in _clip_buckets_array(np.asarray(buckets), n).tolist()
    ]


def dyadic_partition_array(
    x: np.ndarray,
    epsilon1: float,
    rng: np.random.Generator,
    bucket_penalty: float,
    scaffold: DyadicScaffold | None = None,
) -> np.ndarray:
    """Full stage 1 as an ``(k, 2)`` bucket array, clipped to len(x).

    Pass a :class:`DyadicScaffold` built from the same ``x`` to reuse
    the exact-cost computation across trials.
    """
    if scaffold is None:
        scaffold = DyadicScaffold(x)
    costs = scaffold.noisy_costs(epsilon1, rng)
    buckets = optimal_partition_array(costs, bucket_penalty)
    return _clip_buckets_array(buckets, scaffold.n_original)


def dyadic_partition(
    x: np.ndarray,
    epsilon1: float,
    rng: np.random.Generator,
    bucket_penalty: float,
    scaffold: DyadicScaffold | None = None,
) -> list[Bucket]:
    """List-of-tuples form of :func:`dyadic_partition_array`."""
    return [
        tuple(pair)
        for pair in dyadic_partition_array(
            x, epsilon1, rng, bucket_penalty, scaffold=scaffold
        ).tolist()
    ]


def buckets_tile_domain(
    starts: np.ndarray, ends: np.ndarray, n: int
) -> bool:
    """True when ``[start, end)`` rows exactly tile ``[0, n)`` in order.

    The contiguity predicate shared by the reduceat-based fast paths
    (stage 2's estimate, DAWAz's zero postprocessing).
    """
    return bool(
        len(starts)
        and starts[0] == 0
        and ends[-1] == n
        and np.array_equal(starts[1:], ends[:-1])
    )


def validate_partition(buckets, n: int) -> None:
    """Raise unless buckets exactly tile ``[0, n)`` in order.

    Accepts a list of ``(start, end)`` tuples or an ``(k, 2)`` array.
    """
    if len(buckets) == 0:
        if n != 0:
            raise ValueError(f"buckets cover [0, 0), expected [0, {n})")
        return
    arr = np.asarray(buckets, dtype=np.int64).reshape(-1, 2)
    starts, ends = arr[:, 0], arr[:, 1]
    expected = np.concatenate([[0], ends[:-1]])
    bad = (starts != expected) | (ends <= starts)
    if bad.any():
        first = int(np.argmax(bad))
        raise ValueError(
            f"buckets do not tile the domain at {int(starts[first])}"
        )
    if ends[-1] != n:
        raise ValueError(
            f"buckets cover [0, {int(ends[-1])}), expected [0, {n})"
        )
