"""DAWA: the data-aware two-phase DP histogram algorithm (Li et al.).

The paper uses DAWA (the state-of-the-art DP algorithm in the DPBench
study) as its main baseline and as the substrate for DAWAz.  The
reference implementation is reproduced here as a *dyadic* variant (see
``DESIGN.md`` §5): stage 1 privately selects a partition of the domain
into buckets from the dyadic interval tree by minimizing noisy
L1-deviation costs; stage 2 estimates each bucket's total with Laplace
noise and spreads it uniformly.  This preserves DAWA's defining
behaviour — wide buckets over smooth or empty regions amortize noise,
spiky regions fall back to identity-like bins — which is everything the
paper's comparisons exercise.
"""

from repro.mechanisms.dawa.dawa import Dawa, DawaResult
from repro.mechanisms.dawa.estimate import hierarchical_estimate, uniform_bucket_estimate
from repro.mechanisms.dawa.partition import (
    dyadic_partition,
    interval_deviation_cost,
    noisy_dyadic_costs,
)

__all__ = [
    "Dawa",
    "DawaResult",
    "dyadic_partition",
    "hierarchical_estimate",
    "interval_deviation_cost",
    "noisy_dyadic_costs",
    "uniform_bucket_estimate",
]
