"""DAWAz (Algorithm 3) and the general OSDP recipe of Section 5.2.

The recipe upgrades any two-phase DP histogram algorithm: spend a
fraction ``rho`` of the budget on an OSDP *zero-set detection* pass over
the non-sensitive histogram, run the DP algorithm with the remaining
``(1 - rho) * eps``, then post-process — zero out the detected-empty
bins and redistribute each partition's removed mass over its surviving
bins.  Sequential composition (Theorem 3.3) gives (P, eps)-OSDP overall
(Theorem 5.3); the post-processing is privacy-free.

Zero detection follows the paper's experimental setup: an OsdpRR pass
(binomial thinning of ``x_ns`` with retention ``1 - e^{-rho * eps}``)
whose empty bins form ``Z``.  An OsdpLaplaceL1 detector is provided for
the ablation bench — its clipping step also produces exact zeros.

A note on Algorithm 3's line 9: the paper prints the rescale ratio as
``|B| / |Z ∩ B|``, which is non-finite for partitions with no zeroed
bins and does not preserve bucket mass; we implement the evident intent,
``|B| / (|B| - |Z ∩ B|)`` — spread each bucket's estimated total over
its surviving bins (see EXPERIMENTS.md, deviations).
"""

from __future__ import annotations

import math
from typing import Callable, Literal

import numpy as np

from repro.core.guarantees import OSDPGuarantee
from repro.core.policy import AllSensitivePolicy, Policy
from repro.distributions.one_sided_laplace import OneSidedLaplace
from repro.mechanisms.base import HistogramMechanism
from repro.mechanisms.dawa.dawa import Dawa, DawaResult
from repro.queries.histogram import HistogramInput

ZeroDetector = Literal["osdp_rr", "osdp_laplace_l1"]


def detect_zero_bins(
    hist: HistogramInput,
    epsilon: float,
    rng: np.random.Generator,
    detector: ZeroDetector = "osdp_rr",
) -> np.ndarray:
    """The OSDP zero set ``Z``: bins whose noisy non-sensitive count is 0.

    Satisfies (P, epsilon)-OSDP — it is exactly an OSDP primitive of
    Section 5.1 applied to ``x_ns``, with the zero test as
    post-processing.
    """
    x_ns = np.asarray(hist.x_ns)
    if detector == "osdp_rr":
        retention = 1.0 - math.exp(-epsilon)
        sampled = rng.binomial(x_ns.astype(np.int64), retention)
        return sampled == 0
    if detector == "osdp_laplace_l1":
        noise = OneSidedLaplace(scale=1.0 / epsilon)
        noisy = x_ns.astype(float) + noise.sample(rng, size=x_ns.shape)
        return noisy <= 0.0
    raise ValueError(f"unknown zero detector {detector!r}")


def apply_zero_postprocessing(
    result: DawaResult, zero_mask: np.ndarray
) -> np.ndarray:
    """Algorithm 3 lines 5-11: zero out Z and rescale within partitions."""
    estimate = np.asarray(result.estimate, dtype=float).copy()
    zero_mask = np.asarray(zero_mask, dtype=bool)
    if zero_mask.shape != estimate.shape:
        raise ValueError("zero mask must match the estimate's shape")
    for start, end in result.buckets:
        in_bucket = zero_mask[start:end]
        n_zeroed = int(in_bucket.sum())
        width = end - start
        if n_zeroed == 0:
            continue
        if n_zeroed == width:
            estimate[start:end] = 0.0
            continue
        removed_mass = float(estimate[start:end][in_bucket].sum())
        estimate[start:end][in_bucket] = 0.0
        survivors = ~in_bucket
        # Redistribute the removed mass uniformly over the surviving
        # bins: keeps the bucket total invariant (|B| / (|B| - |Z∩B|)
        # rescaling of the uniform expansion).
        estimate[start:end][survivors] += removed_mass / (width - n_zeroed)
    return estimate


class TwoPhaseOsdpRecipe(HistogramMechanism):
    """Section 5.2's recipe around any partition-producing DP algorithm.

    ``dp_factory(epsilon)`` must build a mechanism exposing
    ``release_with_partition(hist, rng) -> DawaResult``.
    """

    name = "osdp_recipe"

    def __init__(
        self,
        epsilon: float,
        dp_factory: Callable[[float], Dawa],
        rho: float = 0.1,
        policy: Policy | None = None,
        zero_detector: ZeroDetector = "osdp_rr",
    ):
        super().__init__(epsilon)
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must lie strictly between 0 and 1")
        self.rho = rho
        self.policy = policy
        self.zero_detector = zero_detector
        self.epsilon_zero = rho * epsilon
        self.epsilon_dp = (1.0 - rho) * epsilon
        self.dp_algorithm = dp_factory(self.epsilon_dp)

    @property
    def guarantee(self) -> OSDPGuarantee:
        """Theorem 5.3 via sequential composition: (P, eps)-OSDP."""
        return OSDPGuarantee(
            policy=self.policy if self.policy is not None else AllSensitivePolicy(),
            epsilon=self.epsilon,
        )

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        zero_mask = detect_zero_bins(
            hist, self.epsilon_zero, rng, detector=self.zero_detector
        )
        result = self.dp_algorithm.release_with_partition(hist, rng)
        return apply_zero_postprocessing(result, zero_mask)


class DawaZ(TwoPhaseOsdpRecipe):
    """Algorithm 3: the recipe instantiated with DAWA (rho = 0.1)."""

    name = "dawaz"

    def __init__(
        self,
        epsilon: float,
        rho: float = 0.1,
        policy: Policy | None = None,
        zero_detector: ZeroDetector = "osdp_rr",
        dawa_split: float = 0.5,
    ):
        super().__init__(
            epsilon,
            dp_factory=lambda eps: Dawa(eps, split=dawa_split),
            rho=rho,
            policy=policy,
            zero_detector=zero_detector,
        )
