"""DAWAz (Algorithm 3) and the general OSDP recipe of Section 5.2.

The recipe upgrades any two-phase DP histogram algorithm: spend a
fraction ``rho`` of the budget on an OSDP *zero-set detection* pass over
the non-sensitive histogram, run the DP algorithm with the remaining
``(1 - rho) * eps``, then post-process — zero out the detected-empty
bins and redistribute each partition's removed mass over its surviving
bins.  Sequential composition (Theorem 3.3) gives (P, eps)-OSDP overall
(Theorem 5.3); the post-processing is privacy-free.

Zero detection follows the paper's experimental setup: an OsdpRR pass
(binomial thinning of ``x_ns`` with retention ``1 - e^{-rho * eps}``)
whose empty bins form ``Z``.  An OsdpLaplaceL1 detector is provided for
the ablation bench — its clipping step also produces exact zeros.

A note on Algorithm 3's line 9: the paper prints the rescale ratio as
``|B| / |Z ∩ B|``, which is non-finite for partitions with no zeroed
bins and does not preserve bucket mass; we implement the evident intent,
``|B| / (|B| - |Z ∩ B|)`` — spread each bucket's estimated total over
its surviving bins (see EXPERIMENTS.md, deviations).
"""

from __future__ import annotations

from typing import Callable, Literal, Sequence

import numpy as np

from repro.core.guarantees import OSDPGuarantee
from repro.core.policy import AllSensitivePolicy, Policy
from repro.distributions.one_sided_laplace import OneSidedLaplace
from repro.mechanisms.base import HistogramMechanism
from repro.mechanisms.batch_sampling import (
    binomial_support_rows,
    one_sided_rows,
)
from repro.mechanisms.dawa.dawa import Dawa, DawaResult
from repro.mechanisms.dawa.partition import buckets_tile_domain
from repro.mechanisms.osdp_rr import release_probability
from repro.queries.histogram import HistogramInput, ns_support_sorted

ZeroDetector = Literal["osdp_rr", "osdp_laplace_l1"]


def detect_zero_bins(
    hist: HistogramInput,
    epsilon: float,
    rng: np.random.Generator,
    detector: ZeroDetector = "osdp_rr",
) -> np.ndarray:
    """The OSDP zero set ``Z``: bins whose noisy non-sensitive count is 0.

    Satisfies (P, epsilon)-OSDP — it is exactly an OSDP primitive of
    Section 5.1 applied to ``x_ns``, with the zero test as
    post-processing.
    """
    x_ns = np.asarray(hist.x_ns)
    if detector == "osdp_rr":
        retention = release_probability(epsilon)
        sampled = rng.binomial(x_ns.astype(np.int64), retention)
        return sampled == 0
    if detector == "osdp_laplace_l1":
        noise = OneSidedLaplace(scale=1.0 / epsilon)
        noisy = x_ns.astype(float) + noise.sample(rng, size=x_ns.shape)
        return noisy <= 0.0
    raise ValueError(f"unknown zero detector {detector!r}")


def detect_zero_bins_batch(
    hist: HistogramInput,
    epsilon: float,
    rng: np.random.Generator,
    n_trials: int,
    detector: ZeroDetector = "osdp_rr",
) -> np.ndarray:
    """``n_trials`` independent zero sets as an ``(n_trials, d)`` bool mask.

    Distribution-identical to ``n_trials`` :func:`detect_zero_bins`
    calls; bins with ``x_ns = 0`` are deterministically in every trial's
    zero set, so only the support is sampled.
    """
    x_ns = np.asarray(hist.x_ns)
    d = len(x_ns)
    masks = np.ones((n_trials, d), dtype=bool)
    cols, sorted_counts = ns_support_sorted(hist)
    if len(cols) == 0:
        return masks
    if detector == "osdp_rr":
        retention = release_probability(epsilon)
        sampled = binomial_support_rows(rng, sorted_counts, retention, n_trials)
        masks[:, cols] = sampled == 0
        return masks
    if detector == "osdp_laplace_l1":
        vals = np.asarray(x_ns, dtype=float)[cols]
        noisy = one_sided_rows(rng, 1.0 / epsilon, vals, n_trials)
        masks[:, cols] = noisy <= 0.0
        return masks
    raise ValueError(f"unknown zero detector {detector!r}")


def apply_zero_postprocessing(
    result: DawaResult, zero_mask: np.ndarray
) -> np.ndarray:
    """Algorithm 3 lines 5-11: zero out Z and rescale within partitions.

    Vectorized over buckets: per-bucket zeroed counts and removed mass
    come from ``np.add.reduceat`` over the bucket starts (stage 1's
    partition tiles the domain), and the redistribution is one
    ``np.repeat`` + ``np.where`` pass.  Redistributing the removed mass
    uniformly over the surviving bins keeps each bucket total invariant
    (the ``|B| / (|B| - |Z∩B|)`` rescaling of the uniform expansion).
    """
    estimate = np.asarray(result.estimate, dtype=float)
    zero_mask = np.asarray(zero_mask, dtype=bool)
    if zero_mask.shape != estimate.shape:
        raise ValueError("zero mask must match the estimate's shape")
    if len(result.buckets) == 0:
        return estimate.copy()
    arr = np.asarray(result.buckets, dtype=np.int64).reshape(-1, 2)
    starts, ends = arr[:, 0], arr[:, 1]
    widths = ends - starts
    if not buckets_tile_domain(starts, ends, len(estimate)):
        return _apply_zero_postprocessing_slices(
            estimate.copy(), zero_mask, result.buckets
        )
    n_zeroed = np.add.reduceat(zero_mask.astype(np.int64), starts)
    removed = np.add.reduceat(np.where(zero_mask, estimate, 0.0), starts)
    survivors = widths - n_zeroed
    per_survivor = np.divide(
        removed,
        survivors,
        out=np.zeros(len(arr)),
        where=survivors > 0,
    )
    return np.where(zero_mask, 0.0, estimate + np.repeat(per_survivor, widths))


def _apply_zero_postprocessing_slices(
    estimate: np.ndarray, zero_mask: np.ndarray, buckets
) -> np.ndarray:
    """Per-slice fallback for bucket lists that do not tile the domain."""
    for start, end in buckets:
        in_bucket = zero_mask[start:end]
        n_zeroed = int(in_bucket.sum())
        width = end - start
        if n_zeroed == 0:
            continue
        if n_zeroed == width:
            estimate[start:end] = 0.0
            continue
        removed_mass = float(estimate[start:end][in_bucket].sum())
        estimate[start:end][in_bucket] = 0.0
        estimate[start:end][~in_bucket] += removed_mass / (width - n_zeroed)
    return estimate


class TwoPhaseOsdpRecipe(HistogramMechanism):
    """Section 5.2's recipe around any partition-producing DP algorithm.

    ``dp_factory(epsilon)`` must build a mechanism exposing
    ``release_with_partition(hist, rng) -> DawaResult``.
    """

    name = "osdp_recipe"

    def __init__(
        self,
        epsilon: float,
        dp_factory: Callable[[float], Dawa],
        rho: float = 0.1,
        policy: Policy | None = None,
        zero_detector: ZeroDetector = "osdp_rr",
    ):
        super().__init__(epsilon)
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must lie strictly between 0 and 1")
        self.rho = rho
        self.policy = policy
        self.zero_detector = zero_detector
        self.epsilon_zero = rho * epsilon
        self.epsilon_dp = (1.0 - rho) * epsilon
        self.dp_algorithm = dp_factory(self.epsilon_dp)

    @property
    def guarantee(self) -> OSDPGuarantee:
        """Theorem 5.3 via sequential composition: (P, eps)-OSDP."""
        return OSDPGuarantee(
            policy=self.policy if self.policy is not None else AllSensitivePolicy(),
            epsilon=self.epsilon,
        )

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        zero_mask = detect_zero_bins(
            hist, self.epsilon_zero, rng, detector=self.zero_detector
        )
        result = self.dp_algorithm.release_with_partition(hist, rng)
        return apply_zero_postprocessing(result, zero_mask)

    def release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        if not isinstance(rng, np.random.Generator):
            return self._sequential_release_batch(hist, rng, n_trials)
        if n_trials is None:
            raise ValueError("n_trials is required with a single generator")
        # All trials' zero sets in one support-restricted sampling pass.
        masks = detect_zero_bins_batch(
            hist, self.epsilon_zero, rng, n_trials, detector=self.zero_detector
        )
        if isinstance(self.dp_algorithm, Dawa):
            # Fully batched stage 1: one scaffold, all trials' noisy
            # cost levels as (n_trials, level) matrices, one vectorized
            # partition DP across trials.
            results = self.dp_algorithm.release_with_partition_batch(
                hist, rng, n_trials
            )
        else:
            results = [
                self.dp_algorithm.release_with_partition(hist, rng)
                for _ in range(n_trials)
            ]
        rows = [
            apply_zero_postprocessing(result, masks[trial])
            for trial, result in enumerate(results)
        ]
        return np.stack(rows)


class DawaZ(TwoPhaseOsdpRecipe):
    """Algorithm 3: the recipe instantiated with DAWA (rho = 0.1)."""

    name = "dawaz"

    def __init__(
        self,
        epsilon: float,
        rho: float = 0.1,
        policy: Policy | None = None,
        zero_detector: ZeroDetector = "osdp_rr",
        dawa_split: float = 0.5,
    ):
        super().__init__(
            epsilon,
            dp_factory=lambda eps: Dawa(eps, split=dawa_split),
            rho=rho,
            policy=policy,
            zero_detector=zero_detector,
        )
