"""The Laplace mechanism (Definition 2.5) — the classic DP baseline.

``LaplaceMechanism`` is the generic vector form: ``f(D) + Lap(S(f)/eps)``
per coordinate.  ``LaplaceHistogram`` specializes to histogram release
under the bounded model, where a record replacement moves one count down
and one up, giving L1-sensitivity 2 and per-bin noise ``Lap(2/eps)`` —
matching the paper's expected L1 error of ``2d/eps`` (Theorem 5.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.guarantees import DPGuarantee
from repro.distributions.laplace import sample_laplace
from repro.mechanisms.base import HistogramMechanism
from repro.mechanisms.batch_sampling import laplace_rows
from repro.queries.histogram import HISTOGRAM_L1_SENSITIVITY, HistogramInput


class LaplaceMechanism:
    """Generic epsilon-DP additive-noise release for numeric queries."""

    def __init__(self, epsilon: float, sensitivity: float):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        self.epsilon = epsilon
        self.sensitivity = sensitivity

    @property
    def scale(self) -> float:
        return self.sensitivity / self.epsilon

    @property
    def guarantee(self) -> DPGuarantee:
        return DPGuarantee(epsilon=self.epsilon)

    def release(
        self, value: float | np.ndarray, rng: np.random.Generator
    ) -> float | np.ndarray:
        """Add calibrated Laplace noise to a scalar or vector answer.

        Scalar-ness follows the coerced array's dimensionality, so
        numpy scalars and 0-d arrays release floats like Python numbers
        do (``np.isscalar`` misses those forms).
        """
        arr = np.asarray(value, dtype=float)
        if arr.ndim == 0:
            return float(arr) + float(sample_laplace(rng, self.scale))
        return arr + sample_laplace(rng, self.scale, size=arr.shape)


class LaplaceHistogram(HistogramMechanism):
    """epsilon-DP histogram release: ``x + Lap(2/eps)^d``.

    Expected L1 error ``2 d / eps``; this is the DP baseline the OSDP
    primitives are measured against in Theorem 5.1 and Section 6.3.3.
    """

    name = "laplace"

    def __init__(self, epsilon: float, clip_negative: bool = False):
        super().__init__(epsilon)
        self.clip_negative = clip_negative
        self._inner = LaplaceMechanism(
            epsilon=epsilon, sensitivity=HISTOGRAM_L1_SENSITIVITY
        )

    @property
    def guarantee(self) -> DPGuarantee:
        return DPGuarantee(epsilon=self.epsilon)

    @property
    def expected_l1_error(self) -> float:
        """Per Theorem 5.1: ``2 d / eps`` for a d-bin histogram; per bin 2/eps."""
        return HISTOGRAM_L1_SENSITIVITY / self.epsilon

    def release(self, hist: HistogramInput, rng: np.random.Generator) -> np.ndarray:
        noisy = self._inner.release(np.asarray(hist.x, dtype=float), rng)
        if self.clip_negative:
            noisy = np.maximum(noisy, 0.0)
        return noisy

    def release_batch(
        self,
        hist: HistogramInput,
        rng: np.random.Generator | Sequence[np.random.Generator],
        n_trials: int | None = None,
    ) -> np.ndarray:
        if not isinstance(rng, np.random.Generator):
            return self._sequential_release_batch(hist, rng, n_trials)
        if n_trials is None:
            raise ValueError("n_trials is required with a single generator")
        out = laplace_rows(
            rng, self._inner.scale, np.asarray(hist.x, dtype=float), n_trials
        )
        if self.clip_negative:
            np.maximum(out, 0.0, out=out)
        return out
