"""The numba kernel backend: fused ``@njit(nogil=True)`` loops.

Importing this module requires numba (the ``[compiled]`` extra); the
package ``__init__`` gates the import and falls back to the numpy
backend when it is absent.

Two properties carry the value:

* **Fusion.**  Each kernel is a single pass over its records — the
  count pair touches every record once (no index materialization, no
  boolean gather), and the noise transforms go from raw bits to the
  final float64 row without intermediate full-matrix temporaries.
* **``nogil=True``.**  The loops run outside the GIL, so concurrent
  releases on the RPC read path (``--max-readers``) overlap on real
  cores instead of serializing on the interpreter lock — the numpy
  ufunc pipelines, fast as they are, never let go of it.

Contract notes (see the package docstring): the integer kernels and
the binomial lookup (pure comparisons) are byte-identical to the numpy
backend; the float32 log-based transforms perform the same operations
in the same precision and order, so they agree with numpy except
possibly in the last ulp of ``log`` — deterministic per backend either
way.  ``cache=True`` persists the compiled artifacts next to the
module so one process pays the JIT cost once per machine.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.mechanisms.kernels._constants import _BINOM_U_EDGE

name = "numba"

_F32_HALF = np.float32(0.5)
_F32_STEP = np.float32(2.0**-23)   # lattice step of the 23-bit uniform
_F32_MIN_TSQ = np.float32(2.0**-46)
_F32_MIN_U = np.float32(2.0**-24)
_F32_LN4 = np.float32(np.log(4.0))
_F32_ZERO = np.float32(0.0)


@njit(cache=True, nogil=True)
def _hist_pair(bin_indices, ns_mask, n_bins):
    x = np.zeros(n_bins, dtype=np.int64)
    x_ns = np.zeros(n_bins, dtype=np.int64)
    for i in range(bin_indices.shape[0]):
        b = bin_indices[i]
        x[b] += 1
        if ns_mask[i]:
            x_ns[b] += 1
    return x, x_ns


def hist_pair(bin_indices, ns_mask, n_bins):
    return _hist_pair(bin_indices, ns_mask, n_bins)


@njit(cache=True, nogil=True)
def _int_bin_pair(values, low, width, high, n_bins, ns_mask):
    x = np.zeros(n_bins, dtype=np.int64)
    x_ns = np.zeros(n_bins, dtype=np.int64)
    for i in range(values.shape[0]):
        v = values[i]
        if v < low or v >= high:
            return x, x_ns, i
        b = (v - low) // width
        x[b] += 1
        if ns_mask[i]:
            x_ns[b] += 1
    return x, x_ns, -1


def int_bin_pair(values, low, width, high, n_bins, ns_mask):
    return _int_bin_pair(values, low, width, high, n_bins, ns_mask)


@njit(cache=True, nogil=True)
def _binomial_lookup(scaled, inverse, k_flat, u, out):
    lo_edge = _BINOM_U_EDGE
    hi_edge = 1.0 - _BINOM_U_EDGE
    n = scaled.shape[0]
    for i in range(u.shape[0]):
        for j in range(u.shape[1]):
            v = u[i, j]
            if v < lo_edge:
                v = lo_edge
            elif v > hi_edge:
                v = hi_edge
            v = v + inverse[j]
            # bisect_left: the first index with scaled[idx] >= v —
            # exactly np.searchsorted(..., side="left").
            lo = 0
            hi = n
            while lo < hi:
                mid = (lo + hi) >> 1
                if scaled[mid] < v:
                    lo = mid + 1
                else:
                    hi = mid
            if lo == n:  # unreachable by construction; memory safety
                lo = n - 1
            out[i, j] = k_flat[lo]
    return out


def binomial_lookup(scaled, inverse, k_flat, u):
    out = np.empty(u.shape, dtype=np.float64)
    return _binomial_lookup(
        scaled,
        np.ascontiguousarray(inverse, dtype=np.int64),
        np.ascontiguousarray(k_flat, dtype=np.int64),
        u,
        out,
    )


@njit(cache=True, nogil=True)
def _laplace_transform(bits, scale32, base, out):
    for i in range(bits.shape[0]):
        for j in range(bits.shape[1]):
            m = bits[i, j] >> np.uint32(9)      # 23 random bits
            # np.float32(m) * 2^-23 is exact (m < 2^23, power-of-two
            # step), and subtracting 1/2 is exact for every lattice
            # point, so t equals the numpy backend's exponent-trick
            # value bit for bit.
            t = np.float32(m) * _F32_STEP - _F32_HALF
            w = t * t
            if w < _F32_MIN_TSQ:
                w = _F32_MIN_TSQ                # guard log(0) at t = 0
            w = np.float32(np.log(w))
            w = (w + _F32_LN4) * scale32        # scale * ln|2t| <= 0
            if t < _F32_ZERO:
                w = -w                          # random +/- magnitude
            out[i, j] = base[j] + w
    return out


def laplace_transform(bits, scale, base):
    out = np.empty(bits.shape, dtype=np.float64)
    return _laplace_transform(bits, np.float32(0.5 * scale), base, out)


@njit(cache=True, nogil=True)
def _one_sided_transform(u, scale32, values, out):
    for i in range(u.shape[0]):
        for j in range(u.shape[1]):
            v = u[i, j]
            if v < _F32_MIN_U:
                v = _F32_MIN_U                  # guard log(0) at u = 0
            v = np.float32(np.log(v)) * scale32  # scale * ln u <= 0
            out[i, j] = values[j] + v
    return out


def one_sided_transform(u, scale, values):
    out = np.empty(u.shape, dtype=np.float64)
    return _one_sided_transform(u, np.float32(scale), values, out)
