"""The pure-numpy kernel backend: ufunc pipelines, always available.

These are the reference implementations of the kernel contract (see
the package docstring).  The noise transforms are the exact ufunc
pipelines the batched release paths have always run — moving them here
changed no seeded stream — and the count kernels fuse the two-bincount
``(x, x_ns)`` construction into a single ``np.bincount`` pass over
interleaved ``2*bin + mask`` codes (exact integer arithmetic, so the
fusion is byte-identical to the unfused pair).

Everything here holds the GIL for the duration of each ufunc; the
numba backend exists because that is precisely what caps threaded
read-path throughput (docs/PERFORMANCE.md §13).
"""

from __future__ import annotations

import numpy as np

from repro.mechanisms.kernels._constants import (
    _BINOM_U_EDGE,
    _EXP_ONE32,
    _LN4_32,
    _MANTISSA_SHIFT,
    _MIN_TSQ32,
    _MIN_U32,
    _SIGN32,
)

name = "numpy"


def hist_pair(
    bin_indices: np.ndarray, ns_mask: np.ndarray, n_bins: int
) -> tuple[np.ndarray, np.ndarray]:
    """One fused bincount over ``2*bin + mask`` codes (validated input)."""
    fused = bin_indices << 1
    fused += ns_mask
    counts = np.bincount(fused, minlength=2 * n_bins)
    x_ns = np.ascontiguousarray(counts[1::2]).astype(np.int64, copy=False)
    x = (counts[::2] + x_ns).astype(np.int64, copy=False)
    return x, x_ns


def int_bin_pair(
    values: np.ndarray,
    low: int,
    width: int,
    high: int,
    n_bins: int,
    ns_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Equal-width binning + fused counts; returns the first bad index."""
    in_range = (values >= low) & (values < high)
    if not np.all(in_range):
        zero = np.zeros(n_bins, dtype=np.int64)
        return zero, zero, int(np.flatnonzero(~in_range)[0])
    idx = values - low
    if width != 1:
        idx //= width
    x, x_ns = hist_pair(idx, ns_mask, n_bins)
    return x, x_ns, -1


def binomial_lookup(
    scaled: np.ndarray,
    inverse: np.ndarray,
    k_flat: np.ndarray,
    u: np.ndarray,
) -> np.ndarray:
    """Group-lift then one ``searchsorted`` over the whole uniform matrix."""
    np.clip(u, _BINOM_U_EDGE, 1.0 - _BINOM_U_EDGE, out=u)
    u += inverse[np.newaxis, :]
    idx = np.searchsorted(scaled, u.ravel(), side="left")
    return k_flat[idx].reshape(u.shape).astype(np.float64)


def laplace_transform(
    bits: np.ndarray, scale: float, base: np.ndarray
) -> np.ndarray:
    """The exponent-trick inverse transform (consumes ``bits`` as scratch).

    23 mantissa bits under a fixed exponent give a float in ``[1, 2)``;
    subtracting 1.5 centers it to ``t in [-1/2, 1/2)``.  ``ln|2t|`` is
    computed as ``(ln(t^2) + ln 4) / 2`` to reuse the squaring pass,
    and the sign is applied by XOR-ing ``t``'s sign bit into the
    float32 noise, which avoids a ``copysign`` pass.
    """
    from repro.mechanisms.kernels import scratch

    shape = bits.shape
    w = scratch(shape, np.float32, 1)
    np.right_shift(bits, _MANTISSA_SHIFT, out=bits)
    np.bitwise_or(bits, _EXP_ONE32, out=bits)
    t = bits.view(np.float32)                 # uniform on [1, 2)
    t -= np.float32(1.5)                      # t in [-1/2, 1/2)
    np.multiply(t, t, out=w)                  # t^2
    np.maximum(w, _MIN_TSQ32, out=w)          # guard log(0) at t = 0
    np.log(w, out=w)
    np.add(w, _LN4_32, out=w)                 # ln(4 t^2) = 2 ln|2t|
    np.multiply(w, np.float32(0.5 * scale), out=w)   # scale * ln|2t| <= 0
    tv = t.view(np.uint32)
    wv = w.view(np.uint32)
    np.bitwise_and(tv, _SIGN32, out=tv)       # sign(t) as a bit mask
    np.bitwise_xor(wv, tv, out=wv)            # random +/- magnitude
    out = np.empty(shape)
    np.add(base, w, out=out)                  # fused f32 -> f64 widen + add
    return out


def one_sided_transform(
    u: np.ndarray, scale: float, values: np.ndarray
) -> np.ndarray:
    """``scale * ln(u)`` in float32, widened in the final add."""
    np.maximum(u, _MIN_U32, out=u)            # guard log(0) at u = 0
    np.log(u, out=u)
    np.multiply(u, np.float32(scale), out=u)  # scale * ln u <= 0
    out = np.empty(u.shape)
    np.add(values, u, out=out)
    return out
