"""The raw-speed kernel tier: one contract, two backends.

Every mechanism's hot loop bottoms out in the same handful of
primitives — fused ``(x, x_ns)`` histogram counting and the
inverse-transform noise samplers of
:mod:`repro.mechanisms.batch_sampling`.  This package gives those
primitives a swappable compiled backend:

* ``numpy`` — the pure-ufunc implementations (always available; the
  reference semantics).
* ``numba`` — ``@njit(nogil=True, cache=True)`` loops that fuse the
  per-record passes **and release the GIL**, which is what lets the RPC
  tier's ``--max-readers`` reader concurrency scale on real cores
  (see docs/PERFORMANCE.md §13).

Selection happens once at import time:

* ``REPRO_KERNEL=numpy`` forces the fallback (the tier-1 lane that
  keeps it from rotting);
* ``REPRO_KERNEL=numba`` *requires* the compiled backend and raises a
  clear error when numba is not importable (install the ``[compiled]``
  extra);
* unset (or ``auto``) tries numba and silently falls back to numpy.

Tests may rebind at runtime with :func:`use_backend`.

Backend contract
----------------
Integer outputs — the fused ``(x, x_ns)`` count pairs and the binomial
inverse-CDF lookups (pure comparisons, no transcendentals) — are
**byte-identical across backends**.  The float noise transforms
(``laplace_transform``/``one_sided_transform``) are deterministic in
``(seed, backend)`` and distribution-exact, but their last-ulp bits may
differ between backends where libm and numpy's SIMD ``log`` disagree;
a seeded release is therefore byte-for-byte reproducible *per backend*,
and the ``compiled`` test lane asserts cross-backend agreement where it
is structurally guaranteed.
"""

from __future__ import annotations

import contextlib
import os
import threading

import numpy as np

__all__ = [
    "KernelBackendError",
    "active_backend",
    "available_backends",
    "hist_pair",
    "int_bin_pair",
    "binomial_lookup",
    "laplace_transform",
    "one_sided_transform",
    "numba_available",
    "select_backend",
    "use_backend",
]

_ENV_VAR = "REPRO_KERNEL"
_BACKEND_NAMES = ("numba", "numpy")


class KernelBackendError(RuntimeError):
    """A kernel backend was requested but cannot be provided."""


# ----------------------------------------------------------------------
# Shared scratch buffers (thread-local, LRU-bounded)
# ----------------------------------------------------------------------

_MAX_SCRATCH_ENTRIES = 16
# Per-thread pools: a buffer handed to one request must never be the
# buffer another thread is concurrently filling (concurrent releases
# are the RPC tier's normal traffic shape).
_scratch_local = threading.local()


def scratch(shape: tuple[int, ...], dtype: type, slot: int = 0) -> np.ndarray:
    """A reusable uninitialized buffer (avoids per-call mmap traffic).

    The pool is LRU-bounded: a miss beyond the bound evicts only the
    oldest entry (dict insertion order), and hits are touched to the
    back — alternating request shapes recycle cold buffers instead of
    dumping the whole pool.
    """
    pool: dict[tuple, np.ndarray] | None = getattr(
        _scratch_local, "pool", None
    )
    if pool is None:
        pool = _scratch_local.pool = {}
    key = (shape, np.dtype(dtype).str, slot)
    buf = pool.pop(key, None)
    if buf is None:
        if len(pool) >= _MAX_SCRATCH_ENTRIES:
            pool.pop(next(iter(pool)))
        buf = np.empty(shape, dtype=dtype)
    pool[key] = buf
    return buf


# ----------------------------------------------------------------------
# Backend loading and selection
# ----------------------------------------------------------------------

_lock = threading.Lock()
_active = None  # the active backend module
_numba_error: str | None = None


def numba_available() -> bool:
    """True when the numba backend can be imported and compiled."""
    try:
        _load("numba")
        return True
    except KernelBackendError:
        return False


def _load(name: str):
    """Import (and memoize) a backend module by name."""
    global _numba_error
    if name == "numpy":
        from repro.mechanisms.kernels import numpy_backend

        return numpy_backend
    if name == "numba":
        if _numba_error is not None:
            raise KernelBackendError(_numba_error)
        try:
            from repro.mechanisms.kernels import numba_backend

            return numba_backend
        except ImportError as exc:
            _numba_error = (
                "the numba kernel backend is unavailable "
                f"({exc}); install the [compiled] extra or set "
                f"{_ENV_VAR}=numpy"
            )
            raise KernelBackendError(_numba_error) from exc
    raise KernelBackendError(
        f"unknown kernel backend {name!r}; choose from "
        f"{list(_BACKEND_NAMES) + ['auto']}"
    )


def select_backend(name: str | None = None) -> str:
    """Activate a backend; returns the active backend's name.

    ``None``/``"auto"`` prefers numba and falls back to numpy;
    explicit names are strict (a missing numba raises
    :class:`KernelBackendError` instead of silently degrading).
    """
    global _active
    if name is None or name == "auto" or name == "":
        try:
            module = _load("numba")
        except KernelBackendError:
            module = _load("numpy")
    else:
        module = _load(name)
    with _lock:
        _active = module
    return module.name


def active_backend() -> str:
    """The name of the backend serving the kernel calls (``numpy``/``numba``)."""
    return _active.name


def available_backends() -> tuple[str, ...]:
    """The backends importable in this environment."""
    names = ["numpy"]
    if numba_available():
        names.insert(0, "numba")
    return tuple(names)


@contextlib.contextmanager
def use_backend(name: str):
    """Temporarily rebind the active backend (tests/benchmarks only)."""
    global _active
    previous = _active
    select_backend(name)
    try:
        yield
    finally:
        with _lock:
            _active = previous


# ----------------------------------------------------------------------
# The kernel surface (dispatches to the active backend)
# ----------------------------------------------------------------------


def hist_pair(
    bin_indices: np.ndarray, ns_mask: np.ndarray, n_bins: int
) -> tuple[np.ndarray, np.ndarray]:
    """Fused ``(x, x_ns)`` int64 count pair in one pass over the records.

    ``x[b]`` counts every record in bin ``b``; ``x_ns[b]`` counts the
    records whose ``ns_mask`` entry is True.  Indices outside
    ``[0, n_bins)`` raise ``ValueError`` (a binning that silently drops
    records must fail loudly).  Byte-identical across backends.
    """
    bin_indices = np.ascontiguousarray(bin_indices, dtype=np.int64)
    ns_mask = np.ascontiguousarray(ns_mask, dtype=bool)
    bad = _check_bin_range(bin_indices, n_bins)
    if bad is not None:
        raise ValueError(
            f"record mapped to bin {bad}, outside [0, {n_bins})"
        )
    return _active.hist_pair(bin_indices, ns_mask, int(n_bins))


def int_bin_pair(
    values: np.ndarray,
    low: int,
    width: int,
    high: int,
    n_bins: int,
    ns_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fully fused equal-width integer binning + ``(x, x_ns)`` counts.

    The single-pass form of ``IntegerBinning.bin_indices`` followed by
    :func:`hist_pair` — no per-record index array is materialized on
    the compiled backend.  ``values`` must lie in ``[low, high)``
    (checked against ``high`` itself, not the last bin's upper edge, so
    a ragged final bin rejects exactly what the unfused binning
    rejects).  Byte-identical across backends, and to the unfused path.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    ns_mask = np.ascontiguousarray(ns_mask, dtype=bool)
    low = int(low)
    width = int(width)
    high = int(high)
    x, x_ns, bad = _active.int_bin_pair(
        values, low, width, high, int(n_bins), ns_mask
    )
    if bad >= 0:
        offender = int(values[bad])
        raise ValueError(
            f"value {offender!r} outside [{low}, {high})"
        )
    return x, x_ns


def binomial_lookup(
    scaled: np.ndarray,
    inverse: np.ndarray,
    k_flat: np.ndarray,
    u: np.ndarray,
) -> np.ndarray:
    """Invert the group-lifted binomial CDF table for a uniform matrix.

    ``u`` is clamped off the lattice edges, lifted by its column's
    group id, and inverted by binary search over ``scaled`` (the
    semantics of ``np.searchsorted(..., side="left")`` — pure float
    comparisons, so the result is byte-identical across backends).
    Returns float64 outcome rows; consumes ``u`` as scratch.
    """
    return _active.binomial_lookup(scaled, inverse, k_flat, u)


def laplace_transform(
    bits: np.ndarray, scale: float, base: np.ndarray
) -> np.ndarray:
    """``base + Lap(scale)`` from raw 23-bit uniforms, as float64 rows.

    ``bits`` is a ``(rows, cols)`` uint32 matrix of raw generator words
    (consumed as scratch); ``base`` broadcasts along rows.  See
    :func:`repro.mechanisms.batch_sampling.laplace_rows` for the
    transform's derivation.  Deterministic per backend.
    """
    return _active.laplace_transform(bits, float(scale), base)


def one_sided_transform(
    u: np.ndarray, scale: float, values: np.ndarray
) -> np.ndarray:
    """``values + scale * ln(u)`` (one-sided Laplace), as float64 rows.

    ``u`` is a ``(rows, cols)`` float32 uniform matrix already drawn
    from the caller's generator (consumed as scratch); ``values``
    broadcasts along rows.  Deterministic per backend.
    """
    return _active.one_sided_transform(u, float(scale), values)


def _check_bin_range(bin_indices: np.ndarray, n_bins: int) -> int | None:
    """The first out-of-range bin index, or None when all are valid."""
    if not len(bin_indices):
        return None
    lo = bin_indices.min()
    hi = bin_indices.max()
    if lo >= 0 and hi < n_bins:
        return None
    return int(lo if lo < 0 else hi)


# Import-time selection: honor REPRO_KERNEL, default to auto-detect.
_requested = os.environ.get(_ENV_VAR)
if _requested is not None and _requested not in ("", "auto"):
    if _requested not in _BACKEND_NAMES:
        raise KernelBackendError(
            f"{_ENV_VAR}={_requested!r} names no kernel backend; choose "
            f"from {list(_BACKEND_NAMES) + ['auto']}"
        )
    select_backend(_requested)
else:
    select_backend(None)
