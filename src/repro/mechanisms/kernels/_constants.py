"""Constants shared by every kernel backend.

Kept in a leaf module so the backends and
:mod:`repro.mechanisms.batch_sampling` can all import them without
cycles.  The values define the transforms' bit-level behavior — both
backends must read the same ones or their streams diverge by more than
the documented last-ulp tolerance.
"""

from __future__ import annotations

import numpy as np

_SIGN32 = np.uint32(0x80000000)
_EXP_ONE32 = np.uint32(0x3F800000)  # f32 bit pattern of 1.0
_MANTISSA_SHIFT = np.uint32(9)
_HALF32 = np.float32(0.5)
_LN4_32 = np.float32(np.log(4.0))
# log(0) guards clamp the zero lattice cell to the *adjacent lattice
# point* — the natural inverse-transform behavior — rather than to an
# arbitrary tiny value (which would emit ~69-sigma outliers with the
# lattice's 2^-23 probability instead of the true ~1e-13 tail mass).
_MIN_U32 = np.float32(2.0**-24)     # rng.random(float32) lattice step
_MIN_TSQ32 = np.float32(2.0**-46)   # (2^-23)^2: smallest nonzero t^2

# Uniforms are clamped away from the exact 0/1 lattice edges so that
# ``u + group`` can never round onto a group boundary; the ~2^-26
# edge-cell distortion is below the f32 uniform granularity the other
# kernels run on.
_BINOM_U_EDGE = 2.0**-26
