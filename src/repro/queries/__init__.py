"""Query abstractions: histograms, n-gram counts, and range workloads.

* :mod:`repro.queries.histogram` — histogram (GROUP BY count) queries
  over databases, the :class:`HistogramInput` bundle every low-dim
  mechanism consumes, and sensitivity bookkeeping (Section 5);
* :mod:`repro.queries.ngram` — sparse n-gram counting over trajectory
  databases with truncation for sensitivity control (Section 6.2);
* :mod:`repro.queries.workload` — identity/prefix/range workload
  matrices for the hierarchical estimator extension.
"""

from repro.queries.histogram import (
    CategoricalBinning,
    HistogramInput,
    HistogramQuery,
    IntegerBinning,
    Product2DBinning,
)
from repro.queries.ngram import NGramCounter, SparseHistogram, truncate_trajectory_grams

__all__ = [
    "CategoricalBinning",
    "HistogramInput",
    "HistogramQuery",
    "IntegerBinning",
    "NGramCounter",
    "Product2DBinning",
    "SparseHistogram",
    "truncate_trajectory_grams",
]
