"""Sparse n-gram counting over trajectory databases (Section 6.2).

The high-dimensional task counts, for every sequence of ``n`` consecutive
access points, the number of daily trajectories containing it.  The
domain has ``64**n`` cells, so histograms are kept *sparse* — a mapping
from n-gram to count — and error metrics account for the never-
materialized zero cells analytically (exactly as the paper does for the
Laplace-mechanism baselines).

Sensitivity: a trajectory may contain up to ``len - n + 1`` distinct
n-grams, so the unbounded count histogram has sensitivity equal to the
longest trajectory (the paper quotes the domain bound ``64**n``).
*Truncation* (Kasiviswanathan et al.) keeps at most ``k`` distinct
n-grams per trajectory, reducing the bounded-model L1-sensitivity to
``2k`` at the cost of undercounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.data.tippers import Trajectory

NGram = tuple[int, ...]


@dataclass
class SparseHistogram:
    """A sparse non-negative histogram over an astronomically large domain."""

    counts: dict[NGram, float] = field(default_factory=dict)
    domain_size: float = 0.0

    def __post_init__(self) -> None:
        if self.domain_size <= 0:
            raise ValueError("domain_size must be positive")

    def __getitem__(self, key: NGram) -> float:
        return self.counts.get(key, 0.0)

    def __len__(self) -> int:
        return len(self.counts)

    @property
    def n_zero_cells(self) -> float:
        """Cells of the full domain that hold no mass (never materialized)."""
        return self.domain_size - len(self.counts)

    @property
    def total(self) -> float:
        return float(sum(self.counts.values()))

    def support(self) -> set[NGram]:
        return set(self.counts)


def truncate_trajectory_grams(
    trajectory: Trajectory, n: int, k: int | None
) -> list[NGram]:
    """Distinct n-grams of a trajectory, truncated to the first ``k``.

    ``k=None`` disables truncation.  First-appearance order makes the
    truncation deterministic, matching the standard "keep at most k
    contributions per user" sensitivity-control recipe.
    """
    grams = trajectory.distinct_ngrams(n)
    if k is not None:
        if k <= 0:
            raise ValueError("truncation parameter k must be positive")
        grams = grams[:k]
    return grams


class NGramCounter:
    """Counts trajectories containing each n-gram, with optional truncation."""

    def __init__(self, n: int, n_aps: int = 64, truncation: int | None = None):
        if n < 1:
            raise ValueError("n must be at least 1")
        self.n = n
        self.n_aps = n_aps
        self.truncation = truncation

    @property
    def domain_size(self) -> float:
        return float(self.n_aps) ** self.n

    @property
    def l1_sensitivity(self) -> float:
        """Bounded-model sensitivity of the count histogram.

        With truncation ``k`` each trajectory touches at most ``k``
        cells, and a replacement changes two trajectories: ``2k``.
        Without truncation the paper quotes the domain bound.
        """
        if self.truncation is not None:
            return 2.0 * self.truncation
        return self.domain_size

    def count(self, trajectories: Iterable[Trajectory]) -> SparseHistogram:
        counts: dict[NGram, float] = {}
        for trajectory in trajectories:
            for gram in truncate_trajectory_grams(
                trajectory, self.n, self.truncation
            ):
                counts[gram] = counts.get(gram, 0.0) + 1.0
        return SparseHistogram(counts=counts, domain_size=self.domain_size)

    def count_columnar(self, db) -> SparseHistogram:
        """:meth:`count` over an ``aps`` ragged column — no row objects.

        Windows are encoded as base-``n_aps`` integers in one vectorized
        pass over the flattened AP sequence; per-record *distinctness*
        (a trajectory containing a gram twice contributes once) and the
        first-appearance truncation order come from a single
        ``np.unique(record * domain + code, return_index=True)`` — the
        first flat index of each (record, gram) pair, sorted, *is* the
        appearance order.  Counts are identical to :meth:`count` on the
        same records, gram for gram (pinned by
        ``tests/test_ngram.py::TestColumnarCounting``).
        """
        if self.truncation is not None and self.truncation <= 0:
            raise ValueError("truncation parameter k must be positive")
        aps = db["aps"]
        flat = np.asarray(aps.flat, dtype=np.int64)
        offsets = np.asarray(aps.offsets, dtype=np.int64)
        lengths = np.diff(offsets)
        n = self.n
        empty = SparseHistogram(counts={}, domain_size=self.domain_size)
        if flat.size < n:
            return empty
        if flat.size and (flat.min() < 0 or flat.max() >= self.n_aps):
            raise ValueError(
                f"AP values must lie in [0, {self.n_aps}) for the "
                "base-encoded window codes"
            )
        domain = self.n_aps**n  # exact (python int)
        if domain * max(len(lengths), 1) >= 2**62:
            raise ValueError(
                "n-gram domain too large for int64 window codes; use "
                "the per-record count() path"
            )
        n_windows = np.maximum(lengths - n + 1, 0)
        total_windows = int(n_windows.sum())
        if total_windows == 0:
            return empty
        # Window code at every flat start position (records are
        # contiguous, so invalid cross-record windows are simply never
        # selected below).
        total = len(flat) - n + 1
        codes = np.zeros(total, dtype=np.int64)
        for j in range(n):
            codes = codes * self.n_aps + flat[j : j + total]
        rec = np.repeat(np.arange(len(lengths)), n_windows)
        window_base = np.cumsum(n_windows) - n_windows
        starts = (
            np.repeat(offsets[:-1], n_windows)
            + np.arange(total_windows)
            - np.repeat(window_base, n_windows)
        )
        window_codes = codes[starts]
        # First occurrence of each (record, gram) pair, in flat order =
        # per-record appearance order (records are contiguous).
        _, first_pos = np.unique(rec * domain + window_codes, return_index=True)
        first_pos.sort()
        distinct_rec = rec[first_pos]
        distinct_codes = window_codes[first_pos]
        if self.truncation is not None:
            rec_start = np.searchsorted(distinct_rec, np.arange(len(lengths)))
            rank = np.arange(len(distinct_rec)) - rec_start[distinct_rec]
            keep = rank < self.truncation
            distinct_codes = distinct_codes[keep]
        grams, gram_counts = np.unique(distinct_codes, return_counts=True)
        counts: dict[NGram, float] = {}
        for code, count in zip(grams.tolist(), gram_counts.tolist()):
            gram = []
            for _ in range(n):
                gram.append(int(code % self.n_aps))
                code //= self.n_aps
            counts[tuple(reversed(gram))] = float(count)
        return SparseHistogram(counts=counts, domain_size=self.domain_size)


def sparse_mre(
    truth: SparseHistogram,
    estimate: Mapping[NGram, float],
    delta: float = 1.0,
    expected_abs_noise_on_zeros: float = 0.0,
    domain: str = "support",
) -> float:
    """Mean relative error of a sparse estimate, with two normalizations.

    ``domain="support"`` (default) averages over the union of the true
    and estimated supports — the cells an analyst actually inspects.
    This matches the magnitudes the paper plots in Figs 2/3 (OsdpRR bars
    near 0.5, the Laplace line near ``2k/eps``); averaging over all
    ``64**n`` cells would make any support-preserving mechanism's MRE
    vanish.

    ``domain="full"`` averages over the entire domain; cells in neither
    support contribute ``expected_abs_noise_on_zeros / delta`` each —
    the analytic accounting the paper describes for the Laplace
    mechanism's perturbation of never-materialized zero cells.
    Mechanisms that leave zero cells exactly zero (OsdpRR, All-NS) pass
    the default 0.
    """
    support = truth.support() | set(estimate)
    total = 0.0
    # Sorted accumulation makes the float sum independent of set
    # iteration order, so the row and columnar counting paths (which
    # build the same multiset in different orders) report bit-identical
    # MREs.
    for gram in sorted(support):
        true_value = truth[gram]
        est_value = float(estimate.get(gram, 0.0))
        total += abs(true_value - est_value) / max(true_value, delta)
    if domain == "support":
        if not support:
            raise ValueError("both truth and estimate are empty")
        return total / len(support)
    if domain == "full":
        n_untracked = truth.domain_size - len(support)
        total += n_untracked * (expected_abs_noise_on_zeros / delta)
        return total / truth.domain_size
    raise ValueError(f"unknown domain mode {domain!r}")
