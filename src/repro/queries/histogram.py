"""Histogram (GROUP BY count) queries and the mechanism input bundle.

The paper's histogram query (Section 5) is::

    SELECT group, COUNT(*) FROM table WHERE <condition> GROUP BY <keys>

reporting *all* groups including empty ones.  A binning object maps each
record to a bin index over a fixed finite domain; :class:`HistogramQuery`
evaluates the counts.  Under the bounded model the L1-sensitivity of the
full histogram is 2 (a replacement moves one record between two bins)
and of a single count is 1.

:class:`HistogramInput` is the common currency of the low-dimensional
evaluation (Section 6.3.3): the true histogram ``x``, the non-sensitive
histogram ``x_ns``, and (for value-based policies such as TIPPERS')
an optional per-bin mask marking bins whose records are all sensitive.
DP mechanisms read only ``x``; OSDP mechanisms use ``x_ns`` and the mask.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.policy import Policy, plain_value
from repro.core.policy_language import PolicySpecError
from repro.data.database import Database

HISTOGRAM_L1_SENSITIVITY = 2.0
SINGLE_COUNT_SENSITIVITY = 1.0


# ----------------------------------------------------------------------
# Binning wire format (the histogram-side analog of
# repro.core.policy_language.policy_from_spec): each binning exposes
# to_spec() and binning_from_spec rebuilds an equivalent binning —
# identical cache_key(), bit-identical bin indices — so the shard-worker
# runtime ships binnings across process boundaries as small dicts.
# ----------------------------------------------------------------------


def binning_to_spec(binning) -> dict:
    """The JSON-serializable spec of a binning (``binning.to_spec()``)."""
    to_spec = getattr(binning, "to_spec", None)
    if to_spec is None:
        raise PolicySpecError(
            f"{type(binning).__name__} has no serializable spec; add a "
            "to_spec()/register_binning_kind pair to make it portable"
        )
    return to_spec()


_BINNING_KINDS: dict[str, Callable] = {}


def register_binning_kind(kind: str, loader: Callable) -> None:
    """Register a loader for a custom binning ``kind``.

    ``loader`` receives the whole spec dict and must return a binning
    whose ``to_spec()`` reproduces it (the round-trip contract).
    """
    if kind in _BINNING_KINDS:
        raise ValueError(f"binning kind {kind!r} already registered")
    _BINNING_KINDS[kind] = loader


def binning_from_spec(spec: Mapping):
    """Rebuild a binning from its spec — inverse of :func:`binning_to_spec`."""
    if not isinstance(spec, Mapping):
        raise PolicySpecError(
            f"binning spec must be a mapping, got {type(spec).__name__}"
        )
    kind = spec.get("kind")
    if kind == "cat":
        return CategoricalBinning(spec["attr"], spec["domain"])
    if kind == "int":
        return IntegerBinning(
            spec["attr"], spec["low"], spec["high"], spec.get("width", 1)
        )
    if kind == "prod":
        return Product2DBinning(
            binning_from_spec(spec["first"]), binning_from_spec(spec["second"])
        )
    loader = _BINNING_KINDS.get(kind)
    if loader is None:
        raise PolicySpecError(
            f"unknown binning kind {kind!r}; registered: "
            f"{sorted(_BINNING_KINDS) + ['cat', 'int', 'prod']}"
        )
    return loader(spec)


def _shard_aware_bin_indices(impl: Callable) -> Callable:
    """Give a ``bin_indices`` implementation sharded dispatch.

    The binning-side analog of ``repro.core.policy._shard_aware``
    (binnings share no base class, so each vectorized ``bin_indices``
    opts in with this decorator): a sharded bundle is binned per shard
    and the index arrays concatenate in record order — bit-identical to
    the single-node array, since a record's bin depends only on that
    record.  Single-node bundles fall straight through.
    """

    @functools.wraps(impl)
    def bin_indices(self, columns) -> np.ndarray:
        map_shards = getattr(columns, "map_shards", None)
        if map_shards is not None:
            return np.concatenate(map_shards(self.bin_indices))
        return impl(self, columns)

    return bin_indices


class CategoricalBinning:
    """Bin by the value of a categorical attribute with a fixed domain."""

    def __init__(self, attribute: str, domain: Sequence[object]):
        if len(set(domain)) != len(domain):
            raise ValueError("domain values must be distinct")
        self.attribute = attribute
        self.domain = tuple(domain)
        self._index = {value: i for i, value in enumerate(self.domain)}

    @property
    def n_bins(self) -> int:
        return len(self.domain)

    def cache_key(self) -> tuple:
        """Hashable value identity (see ``Policy.cache_key``)."""
        return ("cat", self.attribute, self.domain)

    def to_spec(self) -> dict:
        """Wire form (see :func:`binning_from_spec`); order is the bin order."""
        return {
            "kind": "cat",
            "attr": self.attribute,
            "domain": [plain_value(v) for v in self.domain],
        }

    def bin_of(self, record: object) -> int:
        return self._lookup(record[self.attribute])  # type: ignore[index]

    @_shard_aware_bin_indices
    def bin_indices(self, columns) -> np.ndarray:
        """Vectorized ``bin_of`` over a column bundle.

        Sortable domains resolve via one ``np.searchsorted``; object
        domains fall back to the per-value dictionary lookup.
        """
        values = np.asarray(columns[self.attribute])
        domain = np.asarray(self.domain)
        if domain.dtype == object or values.dtype == object:
            return np.fromiter(
                (self._lookup(v) for v in values),
                dtype=np.int64,
                count=len(values),
            )
        order = np.argsort(domain, kind="stable")
        pos = np.searchsorted(domain[order], values)
        pos_clipped = np.minimum(pos, len(domain) - 1)
        matched = domain[order][pos_clipped] == values
        if not np.all(matched):
            offender = values[~matched][0].item()
            raise ValueError(
                f"value {offender!r} of attribute {self.attribute!r} "
                "is outside the declared domain"
            )
        return order[pos_clipped].astype(np.int64)

    def _lookup(self, value) -> int:
        try:
            return self._index[value]
        except KeyError:
            raise ValueError(
                f"value {value!r} of attribute {self.attribute!r} "
                "is outside the declared domain"
            ) from None


class IntegerBinning:
    """Bin an integer attribute into equal-width intervals.

    Bin ``i`` covers ``[low + i*width, low + (i+1)*width)``; values must
    lie in ``[low, high)``.
    """

    def __init__(self, attribute: str, low: int, high: int, width: int = 1):
        if high <= low:
            raise ValueError("high must exceed low")
        if width <= 0:
            raise ValueError("width must be positive")
        self.attribute = attribute
        self.low = low
        self.high = high
        self.width = width

    @property
    def n_bins(self) -> int:
        return -(-(self.high - self.low) // self.width)

    def cache_key(self) -> tuple:
        """Hashable value identity (see ``Policy.cache_key``)."""
        return ("int", self.attribute, self.low, self.high, self.width)

    def to_spec(self) -> dict:
        return {
            "kind": "int",
            "attr": self.attribute,
            "low": plain_value(self.low),
            "high": plain_value(self.high),
            "width": plain_value(self.width),
        }

    def bin_of(self, record: object) -> int:
        value = record[self.attribute]  # type: ignore[index]
        if not self.low <= value < self.high:
            raise ValueError(
                f"value {value!r} outside [{self.low}, {self.high})"
            )
        return (value - self.low) // self.width

    @_shard_aware_bin_indices
    def bin_indices(self, columns) -> np.ndarray:
        """Vectorized ``bin_of``: range check + integer division."""
        values = np.asarray(columns[self.attribute])
        in_range = (values >= self.low) & (values < self.high)
        if not np.all(in_range):
            offender = values[~in_range][0]
            offender = offender.item() if hasattr(offender, "item") else offender
            raise ValueError(
                f"value {offender!r} outside [{self.low}, {self.high})"
            )
        return ((values - self.low) // self.width).astype(np.int64)


class Product2DBinning:
    """Row-major product of two binnings (2-D histograms, e.g. AP x hour)."""

    def __init__(self, first, second):
        self.first = first
        self.second = second

    @property
    def n_bins(self) -> int:
        return self.first.n_bins * self.second.n_bins

    @property
    def shape(self) -> tuple[int, int]:
        return (self.first.n_bins, self.second.n_bins)

    def cache_key(self) -> tuple | None:
        """Value identity when both factors have one, else None."""
        first = getattr(self.first, "cache_key", lambda: None)()
        second = getattr(self.second, "cache_key", lambda: None)()
        if first is None or second is None:
            return None
        return ("prod", first, second)

    def to_spec(self) -> dict:
        return {
            "kind": "prod",
            "first": binning_to_spec(self.first),
            "second": binning_to_spec(self.second),
        }

    def bin_of(self, record: object) -> int:
        return self.first.bin_of(record) * self.second.n_bins + self.second.bin_of(
            record
        )

    # Dispatch at the product level so each shard computes its full
    # 2-D index in one pass instead of concatenating twice.
    @_shard_aware_bin_indices
    def bin_indices(self, columns) -> np.ndarray:
        return (
            self.first.bin_indices(columns) * self.second.n_bins
            + self.second.bin_indices(columns)
        )


class HistogramQuery:
    """A histogram query over a database with a fixed binning."""

    def __init__(self, binning):
        self.binning = binning

    @property
    def n_bins(self) -> int:
        return self.binning.n_bins

    @property
    def sensitivity(self) -> float:
        """L1-sensitivity of the full histogram under bounded DP."""
        return HISTOGRAM_L1_SENSITIVITY

    def evaluate(self, db) -> np.ndarray:
        """Counts over a row :class:`Database` or a columnar database.

        Columnar databases evaluate through the binning's vectorized
        ``bin_indices`` and one ``np.bincount``.
        """
        if hasattr(db, "histogram_from_indices"):
            return db.histogram(self.binning, self.n_bins)
        return db.histogram(self.binning.bin_of, self.n_bins)


@dataclass(frozen=True)
class HistogramInput:
    """Everything a low-dimensional release mechanism may consume.

    ``x`` — true histogram over all records;
    ``x_ns`` — histogram over non-sensitive records only (``x_ns <= x``);
    ``sensitive_bin_mask`` — optional; True for bins whose records are
    exclusively sensitive under a value-based policy (the TIPPERS case,
    §6.3.3.1).  When absent, bins may mix sensitive and non-sensitive
    records (the opt-in/opt-out case).
    """

    x: np.ndarray
    x_ns: np.ndarray
    sensitive_bin_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        x = np.asarray(self.x)
        x_ns = np.asarray(self.x_ns)
        if x.shape != x_ns.shape:
            raise ValueError("x and x_ns must share a shape")
        if x.ndim != 1:
            raise ValueError("histograms must be flattened to 1-D")
        if np.any(x_ns > x):
            raise ValueError("x_ns must be a sub-histogram of x")
        if np.any(x < 0):
            raise ValueError("histogram counts must be non-negative")
        if self.sensitive_bin_mask is not None:
            mask = np.asarray(self.sensitive_bin_mask)
            if mask.shape != x.shape:
                raise ValueError("mask must match histogram shape")

    @property
    def n_bins(self) -> int:
        return len(self.x)

    @property
    def x_sensitive(self) -> np.ndarray:
        """Histogram of the sensitive records (``x - x_ns``)."""
        return self.x - self.x_ns

    # Cached views for the batched release fast paths.  The instance is
    # frozen, so these are computed once per input and shared across the
    # mechanisms and trials of a sweep (cached_property writes straight
    # to __dict__, which a frozen dataclass permits).

    @cached_property
    def x_ns_int(self) -> np.ndarray:
        """``x_ns`` as int64 counts (binomial thinning needs integers)."""
        return np.asarray(self.x_ns).astype(np.int64)

    @cached_property
    def ns_support(self) -> np.ndarray:
        """Indices of bins with a nonzero non-sensitive count.

        Support-restricted mechanisms (binomial thinning, the clipped
        one-sided Laplace) release exact zeros off the support, so only
        these bins ever need noise.
        """
        return np.flatnonzero(np.asarray(self.x_ns))

    @cached_property
    def ns_support_sorted(self) -> tuple[np.ndarray, np.ndarray]:
        """``(bin_indices, counts)`` of the support, sorted by count.

        Sorted order lets numpy's binomial sampler reuse its per-count
        setup across equal consecutive counts.
        """
        counts = self.x_ns_int[self.ns_support]
        order = np.argsort(counts, kind="stable")
        return self.ns_support[order], counts[order]

    @property
    def non_sensitive_ratio(self) -> float:
        total = float(self.x.sum())
        return float(self.x_ns.sum()) / total if total else 0.0

    @classmethod
    def from_database(
        cls, db: Database, query: HistogramQuery, policy: Policy
    ) -> "HistogramInput":
        """Evaluate the query on the full and non-sensitive databases.

        Also derives the per-bin sensitivity mask: a bin is marked
        sensitive-only when it holds records but none are non-sensitive
        (the value-based-policy structure the hybrid mechanism exploits).
        """
        x = query.evaluate(db)
        x_ns = query.evaluate(db.non_sensitive(policy))
        mask = (x > 0) & (x_ns == 0)
        return cls(x=x, x_ns=x_ns, sensitive_bin_mask=mask)

    @classmethod
    def from_columnar(
        cls, db, query: HistogramQuery, policy: Policy
    ) -> "HistogramInput":
        """Vectorized ``from_database`` for a (possibly sharded) columnar db.

        Single-node: bin indices are computed once for the full
        database; ``x`` and ``x_ns`` are two ``np.bincount`` calls (the
        non-sensitive one over the policy's vectorized mask), so the
        whole construction is free of per-record Python dispatch.

        Sharded (:class:`repro.data.sharding.ShardedColumnarDatabase`):
        each shard produces its ``(x, x_ns)`` pair independently —
        serially or on the database's executor — and the pairs merge by
        exact integer addition, bit-identical to the single-node
        histograms.
        """
        map_shards = getattr(db, "map_shards", None)
        if map_shards is not None:
            pairs = map_shards(
                functools.partial(
                    _shard_histogram_counts, query=query, policy=policy
                )
            )
        else:
            pairs = [_shard_histogram_counts(db, query, policy)]
        return cls.from_shard_counts(pairs)

    @classmethod
    def from_shard_counts(
        cls, pairs: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> "HistogramInput":
        """Merge per-shard ``(x, x_ns)`` pairs and derive the bin mask.

        The single home of the merge-and-mask step shared by
        :meth:`from_columnar` and the release server's cached path —
        exact integer addition, then the value-based sensitivity mask
        (a bin is sensitive-only when populated but without
        non-sensitive records).
        """
        x = np.sum([p[0] for p in pairs], axis=0, dtype=np.int64)
        x_ns = np.sum([p[1] for p in pairs], axis=0, dtype=np.int64)
        mask = (x > 0) & (x_ns == 0)
        return cls(x=x, x_ns=x_ns, sensitive_bin_mask=mask)

    @classmethod
    def from_arrays(
        cls, x: np.ndarray, x_ns: np.ndarray
    ) -> "HistogramInput":
        return cls(x=np.asarray(x, dtype=float), x_ns=np.asarray(x_ns, dtype=float))


def counts_from_mask(
    bin_indices: np.ndarray, ns_mask: np.ndarray, n_bins: int
) -> tuple[np.ndarray, np.ndarray]:
    """``(x, x_ns)`` int64 counts from bin indices + non-sensitive flags.

    The count-construction step shared by the columnar/sharded
    histogram path and the release server's cached path; rejects
    indices outside ``[0, n_bins)`` and index/mask length mismatches
    (a binning that silently drops records must fail loudly, not
    produce an x/x_ns pair built from inconsistent record sets).
    Counting runs on the active kernel backend
    (:mod:`repro.mechanisms.kernels`): one fused pass producing both
    histograms — byte-identical on every backend to the classic
    two-bincount construction.
    """
    from repro.mechanisms import kernels

    bin_indices = np.asarray(bin_indices)
    ns_mask = np.asarray(ns_mask)
    if bin_indices.shape != ns_mask.shape:
        raise ValueError(
            f"bin indices cover {bin_indices.shape[0]} records but the "
            f"policy mask covers {ns_mask.shape[0]}"
        )
    return kernels.hist_pair(bin_indices, ns_mask, n_bins)


def _shard_histogram_counts(
    db, query: HistogramQuery, policy: Policy
) -> tuple[np.ndarray, np.ndarray]:
    """``(x, x_ns)`` int64 counts for one columnar database (or shard).

    A module-level function (not a closure) so process-pool executors
    can ship it to workers alongside a picklable shard and policy.
    Eligible shard layouts (see ``ColumnarDatabase.fused_counts``) run
    the fully fused mask→bin→count kernel — one pass per shard, no
    index materialization — and every layout produces byte-identical
    pairs either way.
    """
    from repro.core.policy import NON_SENSITIVE

    ns = policy.evaluate_batch(db) == NON_SENSITIVE
    fused = getattr(db, "fused_counts", None)
    if fused is not None:
        pair = fused(query.binning, ns)
        if pair is not None:
            return pair
    indices = query.binning.bin_indices(db)
    return counts_from_mask(indices, ns, query.n_bins)


def histogram_input_for(db, query: HistogramQuery, policy: Policy) -> HistogramInput:
    """Build a :class:`HistogramInput` from any database flavor.

    Routes row databases through the per-record reference path and
    columnar/sharded databases through the vectorized path — the single
    entry point the mechanisms' ``release_from_database`` and the
    service facade use.
    """
    if hasattr(db, "map_shards") or hasattr(db, "histogram_from_indices"):
        return HistogramInput.from_columnar(db, query, policy)
    return HistogramInput.from_database(db, query, policy)


def ns_support(hist) -> np.ndarray:
    """Indices of nonzero non-sensitive bins for any histogram input.

    Uses the cached :class:`HistogramInput` view when available; the
    duck-typed fallback serves ad-hoc inputs that only expose ``x_ns``.
    """
    if isinstance(hist, HistogramInput):
        return hist.ns_support
    return np.flatnonzero(np.asarray(hist.x_ns))


def ns_support_sorted(hist) -> tuple[np.ndarray, np.ndarray]:
    """``(bin_indices, counts)`` of the nonzero ``x_ns`` bins, count-sorted.

    The single home of the support/sort logic the batched samplers rely
    on (see :attr:`HistogramInput.ns_support_sorted`).
    """
    if isinstance(hist, HistogramInput):
        return hist.ns_support_sorted
    counts = np.asarray(hist.x_ns).astype(np.int64)
    support = np.flatnonzero(counts)
    order = np.argsort(counts[support], kind="stable")
    return support[order], counts[support][order]


def flatten_2d(hist2d: np.ndarray) -> np.ndarray:
    """Row-major flatten for feeding 2-D histograms to 1-D mechanisms."""
    return np.asarray(hist2d).reshape(-1)
