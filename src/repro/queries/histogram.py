"""Histogram (GROUP BY count) queries and the mechanism input bundle.

The paper's histogram query (Section 5) is::

    SELECT group, COUNT(*) FROM table WHERE <condition> GROUP BY <keys>

reporting *all* groups including empty ones.  A binning object maps each
record to a bin index over a fixed finite domain; :class:`HistogramQuery`
evaluates the counts.  Under the bounded model the L1-sensitivity of the
full histogram is 2 (a replacement moves one record between two bins)
and of a single count is 1.

:class:`HistogramInput` is the common currency of the low-dimensional
evaluation (Section 6.3.3): the true histogram ``x``, the non-sensitive
histogram ``x_ns``, and (for value-based policies such as TIPPERS')
an optional per-bin mask marking bins whose records are all sensitive.
DP mechanisms read only ``x``; OSDP mechanisms use ``x_ns`` and the mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.policy import Policy
from repro.data.database import Database

HISTOGRAM_L1_SENSITIVITY = 2.0
SINGLE_COUNT_SENSITIVITY = 1.0


class CategoricalBinning:
    """Bin by the value of a categorical attribute with a fixed domain."""

    def __init__(self, attribute: str, domain: Sequence[object]):
        if len(set(domain)) != len(domain):
            raise ValueError("domain values must be distinct")
        self.attribute = attribute
        self.domain = tuple(domain)
        self._index = {value: i for i, value in enumerate(self.domain)}

    @property
    def n_bins(self) -> int:
        return len(self.domain)

    def bin_of(self, record: object) -> int:
        value = record[self.attribute]  # type: ignore[index]
        try:
            return self._index[value]
        except KeyError:
            raise ValueError(
                f"value {value!r} of attribute {self.attribute!r} "
                "is outside the declared domain"
            ) from None


class IntegerBinning:
    """Bin an integer attribute into equal-width intervals.

    Bin ``i`` covers ``[low + i*width, low + (i+1)*width)``; values must
    lie in ``[low, high)``.
    """

    def __init__(self, attribute: str, low: int, high: int, width: int = 1):
        if high <= low:
            raise ValueError("high must exceed low")
        if width <= 0:
            raise ValueError("width must be positive")
        self.attribute = attribute
        self.low = low
        self.high = high
        self.width = width

    @property
    def n_bins(self) -> int:
        return -(-(self.high - self.low) // self.width)

    def bin_of(self, record: object) -> int:
        value = record[self.attribute]  # type: ignore[index]
        if not self.low <= value < self.high:
            raise ValueError(
                f"value {value!r} outside [{self.low}, {self.high})"
            )
        return (value - self.low) // self.width


class Product2DBinning:
    """Row-major product of two binnings (2-D histograms, e.g. AP x hour)."""

    def __init__(self, first, second):
        self.first = first
        self.second = second

    @property
    def n_bins(self) -> int:
        return self.first.n_bins * self.second.n_bins

    @property
    def shape(self) -> tuple[int, int]:
        return (self.first.n_bins, self.second.n_bins)

    def bin_of(self, record: object) -> int:
        return self.first.bin_of(record) * self.second.n_bins + self.second.bin_of(
            record
        )


class HistogramQuery:
    """A histogram query over a database with a fixed binning."""

    def __init__(self, binning):
        self.binning = binning

    @property
    def n_bins(self) -> int:
        return self.binning.n_bins

    @property
    def sensitivity(self) -> float:
        """L1-sensitivity of the full histogram under bounded DP."""
        return HISTOGRAM_L1_SENSITIVITY

    def evaluate(self, db: Database) -> np.ndarray:
        return db.histogram(self.binning.bin_of, self.n_bins)


@dataclass(frozen=True)
class HistogramInput:
    """Everything a low-dimensional release mechanism may consume.

    ``x`` — true histogram over all records;
    ``x_ns`` — histogram over non-sensitive records only (``x_ns <= x``);
    ``sensitive_bin_mask`` — optional; True for bins whose records are
    exclusively sensitive under a value-based policy (the TIPPERS case,
    §6.3.3.1).  When absent, bins may mix sensitive and non-sensitive
    records (the opt-in/opt-out case).
    """

    x: np.ndarray
    x_ns: np.ndarray
    sensitive_bin_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        x = np.asarray(self.x)
        x_ns = np.asarray(self.x_ns)
        if x.shape != x_ns.shape:
            raise ValueError("x and x_ns must share a shape")
        if x.ndim != 1:
            raise ValueError("histograms must be flattened to 1-D")
        if np.any(x_ns > x):
            raise ValueError("x_ns must be a sub-histogram of x")
        if np.any(x < 0):
            raise ValueError("histogram counts must be non-negative")
        if self.sensitive_bin_mask is not None:
            mask = np.asarray(self.sensitive_bin_mask)
            if mask.shape != x.shape:
                raise ValueError("mask must match histogram shape")

    @property
    def n_bins(self) -> int:
        return len(self.x)

    @property
    def x_sensitive(self) -> np.ndarray:
        """Histogram of the sensitive records (``x - x_ns``)."""
        return self.x - self.x_ns

    @property
    def non_sensitive_ratio(self) -> float:
        total = float(self.x.sum())
        return float(self.x_ns.sum()) / total if total else 0.0

    @classmethod
    def from_database(
        cls, db: Database, query: HistogramQuery, policy: Policy
    ) -> "HistogramInput":
        """Evaluate the query on the full and non-sensitive databases.

        Also derives the per-bin sensitivity mask: a bin is marked
        sensitive-only when it holds records but none are non-sensitive
        (the value-based-policy structure the hybrid mechanism exploits).
        """
        x = query.evaluate(db)
        x_ns = query.evaluate(db.non_sensitive(policy))
        mask = (x > 0) & (x_ns == 0)
        return cls(x=x, x_ns=x_ns, sensitive_bin_mask=mask)

    @classmethod
    def from_arrays(
        cls, x: np.ndarray, x_ns: np.ndarray
    ) -> "HistogramInput":
        return cls(x=np.asarray(x, dtype=float), x_ns=np.asarray(x_ns, dtype=float))


def flatten_2d(hist2d: np.ndarray) -> np.ndarray:
    """Row-major flatten for feeding 2-D histograms to 1-D mechanisms."""
    return np.asarray(hist2d).reshape(-1)
