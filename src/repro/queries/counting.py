"""Scalar counting queries under OSDP.

The histogram machinery of Section 5 specializes to single counts:
``COUNT(*) WHERE <predicate>``.  Over non-sensitive records a one-sided
neighbor can only increase the count (by at most 1), so one-sided noise
suffices — the scalar core of Theorem 5.2.  Both continuous
(``Lap^-``) and integer (one-sided geometric) noise are provided, plus
the DP Laplace baseline at the bounded-model sensitivity of 1.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.core.accountant import PrivacyAccountant
from repro.core.guarantees import DPGuarantee, OSDPGuarantee
from repro.core.policy import Policy
from repro.distributions.geometric import OneSidedGeometric
from repro.distributions.laplace import sample_laplace
from repro.distributions.one_sided_laplace import sample_one_sided_laplace

SINGLE_COUNT_SENSITIVITY = 1.0

Predicate = Callable[[object], bool]


def _true_count(records: Iterable[object], predicate: Predicate | None) -> int:
    if predicate is None:
        return sum(1 for _ in records)
    return sum(1 for r in records if predicate(r))


class OsdpCount:
    """One-sided noisy count over the non-sensitive records.

    ``integer=True`` switches to one-sided geometric noise so the
    release stays an integer (useful when counts feed discrete
    downstream logic).  Outputs are clipped at zero, which preserves the
    exact-zero property: an empty predicate count is released as 0.
    """

    def __init__(
        self,
        policy: Policy,
        epsilon: float,
        predicate: Predicate | None = None,
        integer: bool = False,
        clip: bool = True,
    ):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.policy = policy
        self.epsilon = epsilon
        self.predicate = predicate
        self.integer = integer
        self.clip = clip

    @property
    def guarantee(self) -> OSDPGuarantee:
        return OSDPGuarantee(policy=self.policy, epsilon=self.epsilon)

    def release(
        self,
        records: Iterable[object],
        rng: np.random.Generator,
        accountant: PrivacyAccountant | None = None,
    ) -> float:
        if accountant is not None:
            accountant.charge(self.policy, self.epsilon, label="OsdpCount")
        non_sensitive = self.policy.non_sensitive_subset(records)
        count = float(_true_count(non_sensitive, self.predicate))
        if self.integer:
            noise = float(
                OneSidedGeometric.from_epsilon(
                    self.epsilon, SINGLE_COUNT_SENSITIVITY
                ).sample(rng)
            )
        else:
            noise = float(
                sample_one_sided_laplace(
                    rng, SINGLE_COUNT_SENSITIVITY / self.epsilon
                )
            )
        noisy = count + noise
        return max(noisy, 0.0) if self.clip else noisy


class DpCount:
    """The epsilon-DP Laplace count baseline (sensitivity 1, bounded)."""

    def __init__(
        self, epsilon: float, predicate: Predicate | None = None, clip: bool = True
    ):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.predicate = predicate
        self.clip = clip

    @property
    def guarantee(self) -> DPGuarantee:
        return DPGuarantee(epsilon=self.epsilon)

    def release(
        self, records: Iterable[object], rng: np.random.Generator
    ) -> float:
        count = float(_true_count(list(records), self.predicate))
        noisy = count + float(
            sample_laplace(rng, SINGLE_COUNT_SENSITIVITY / self.epsilon)
        )
        return max(noisy, 0.0) if self.clip else noisy
