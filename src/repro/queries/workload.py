"""Linear query workloads over 1-D histogram domains.

DAWA's second stage is workload-aware; the paper's experiments use the
histogram (identity) workload, but the estimator extension supports
range-style workloads, so the standard matrices are provided:

* identity — one query per bin (the histogram itself);
* prefix — cumulative counts ``x_1 + ... + x_i``;
* all (or sampled) range queries ``sum(x[i:j])``.

Workloads are dense float matrices ``W`` with one row per query; the
error of an estimate ``x_hat`` on workload ``W`` is ``||W(x - x_hat)||``.
"""

from __future__ import annotations

import numpy as np


def identity_workload(n: int) -> np.ndarray:
    """The histogram workload: the n x n identity."""
    if n <= 0:
        raise ValueError("n must be positive")
    return np.eye(n)


def prefix_workload(n: int) -> np.ndarray:
    """All prefix-sum queries: lower-triangular ones."""
    if n <= 0:
        raise ValueError("n must be positive")
    return np.tril(np.ones((n, n)))


def range_workload(n: int, ranges: list[tuple[int, int]]) -> np.ndarray:
    """Indicator rows for the given half-open ranges ``[lo, hi)``."""
    rows = np.zeros((len(ranges), n))
    for row, (lo, hi) in enumerate(ranges):
        if not 0 <= lo < hi <= n:
            raise ValueError(f"range ({lo}, {hi}) invalid for domain size {n}")
        rows[row, lo:hi] = 1.0
    return rows


def random_range_workload(
    n: int, n_queries: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly random range queries (for estimator stress tests)."""
    ranges = []
    for _ in range(n_queries):
        lo = int(rng.integers(0, n))
        hi = int(rng.integers(lo + 1, n + 1))
        ranges.append((lo, hi))
    return range_workload(n, ranges)


def workload_error(
    workload: np.ndarray, x: np.ndarray, estimate: np.ndarray
) -> float:
    """Mean absolute workload-answer error ``mean |W(x - x_hat)|``."""
    diff = workload @ (np.asarray(x, dtype=float) - np.asarray(estimate, dtype=float))
    return float(np.mean(np.abs(diff)))
