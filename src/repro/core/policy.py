"""Policy functions (Definition 3.1) and the relaxation algebra.

A policy function ``P : T -> {0, 1}`` labels each record as sensitive
(``P(r) = 0``) or non-sensitive (``P(r) = 1``).  The paper's examples —
"minors are sensitive", "opted-out users are sensitive" — are expressible
with :class:`AttributePolicy` and :class:`OptInPolicy`; arbitrary
predicates with :class:`LambdaPolicy`.

The relaxation partial order (Definition 3.5) and minimum relaxation
(Definition 3.6) drive the composition theorem: composing OSDP mechanisms
with different policies yields a guarantee under the *minimum relaxation*
``P_mr(r) = max_i P_i(r)`` — a record stays protected only if *every*
constituent policy protected it.
"""

from __future__ import annotations

import functools
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

Record = object

SENSITIVE = 0
NON_SENSITIVE = 1

MASK_DTYPE = np.int8


def _column(columns, attribute: str) -> np.ndarray:
    """Fetch one attribute column from a column bundle or mapping."""
    return columns[attribute]


def _bundle_length(columns) -> int:
    if isinstance(columns, Mapping):
        for column in columns.values():
            return len(column)
        return 0
    try:
        return len(columns)  # ColumnarDatabase defines record count
    except TypeError:
        raise TypeError(
            "column bundle must define len() as its record count"
        ) from None


def _iter_bundle_records(columns) -> Iterable[Record]:
    """Reconstruct per-record views for the scalar fallback path."""
    iter_records = getattr(columns, "iter_records", None)
    if iter_records is not None:
        return iter_records()
    if isinstance(columns, Mapping):
        names = list(columns)
        arrays = [np.asarray(columns[name]) for name in names]
        return (
            {name: arr[i] for name, arr in zip(names, arrays)}
            for i in range(len(arrays[0]) if arrays else 0)
        )
    raise TypeError(f"cannot iterate records of {type(columns).__name__}")


def _mask_from_bool(sensitive: np.ndarray) -> np.ndarray:
    """bool 'is sensitive' array -> {0, 1} mask (0 = sensitive)."""
    return np.where(sensitive, SENSITIVE, NON_SENSITIVE).astype(MASK_DTYPE)


def _shard_aware(impl: Callable) -> Callable:
    """Wrap an ``evaluate_batch`` implementation with sharded dispatch.

    A sharded column bundle (anything exposing ``map_shards``, i.e.
    :class:`repro.data.sharding.ShardedColumnarDatabase`) is evaluated
    shard by shard — serially or on the bundle's executor — and the
    per-shard masks are concatenated in record order, which is
    bit-identical to single-node evaluation.  Non-sharded bundles fall
    straight through to the wrapped implementation, so the dispatch
    costs one attribute lookup on the hot path.
    """

    @functools.wraps(impl)
    def evaluate_batch(self, columns) -> np.ndarray:
        map_shards = getattr(columns, "map_shards", None)
        if map_shards is not None:
            return np.concatenate(map_shards(self.evaluate_batch))
        return impl(self, columns)

    evaluate_batch._shard_aware = True  # type: ignore[attr-defined]
    return evaluate_batch


class BatchUnsupported(Exception):
    """A vectorized evaluation cannot honor Python scalar semantics.

    Raised by :func:`members_isin` (and usable by custom batch
    predicates) to force the exact per-record fallback.
    """


class SpecUnsupported(TypeError):
    """The policy holds an opaque predicate and cannot be serialized.

    Raised by :meth:`Policy.to_spec` for policies built from arbitrary
    callables (:class:`LambdaPolicy`, :class:`AttributePolicy`); such
    policies can only run in the process that created them.  The
    declarative alternative — :func:`repro.core.policy_language.compile_policy`
    — produces policies that round-trip losslessly.
    """


def plain_value(value):
    """A JSON-friendly Python scalar for a (possibly numpy) value.

    Spec dicts must survive ``json.dumps``/``loads`` unchanged, so
    numpy scalars (which ``json`` rejects) are unwrapped to their
    Python equivalents before they enter a spec.
    """
    if isinstance(value, np.generic):
        return value.item()
    return value


def sorted_plain_values(values: Iterable[object]) -> list:
    """A deterministic JSON-friendly list for an unordered value set.

    Mixed-type sets (``{1, "x"}``) cannot be sorted by ``<``; keying by
    ``(type name, repr)`` gives a stable order for any hashable values,
    so equal sets always serialize to the same spec (and hence the same
    :func:`repro.core.policy_language.policy_spec_fingerprint`).
    """
    plain = [plain_value(v) for v in values]
    return sorted(plain, key=lambda v: (type(v).__name__, repr(v)))


def members_isin(values: np.ndarray, members) -> np.ndarray:
    """``np.isin`` matching Python set-membership semantics, or raise.

    ``np.isin`` matches by ``==``, which disagrees with set membership
    for NaN (hash-identity), and ``np.asarray`` coerces mixed-type
    member lists to strings, silently un-matching numeric members.
    Whenever vectorized membership could diverge from per-record
    ``value in members``, :class:`BatchUnsupported` is raised so the
    caller falls back to exact evaluation.
    """
    members = list(members)
    if any(isinstance(v, float) and v != v for v in members):
        raise BatchUnsupported("NaN member: isin diverges from set membership")
    members_arr = np.asarray(members)
    values = np.asarray(values)
    numeric = "biufc"
    kinds_ok = (
        values.dtype.kind == "O"
        or members_arr.dtype.kind == "O"
        or (values.dtype.kind in numeric and members_arr.dtype.kind in numeric)
        or (values.dtype.kind in "US" and members_arr.dtype.kind in "US")
    )
    if not kinds_ok:
        raise BatchUnsupported(
            f"member dtype {members_arr.dtype} incomparable with "
            f"column dtype {values.dtype}"
        )
    try:
        return np.isin(values, members_arr)
    except TypeError as exc:  # e.g. unsortable mixed objects
        raise BatchUnsupported(str(exc)) from exc


class Policy(ABC):
    """A policy function mapping records to {0 (sensitive), 1 (non-sensitive)}."""

    name: str = "policy"

    def __init_subclass__(cls, **kwargs) -> None:
        """Make every ``evaluate_batch`` override shard-aware.

        Subclasses override ``evaluate_batch`` freely with single-node
        numpy formulations; the wrapper added here routes sharded column
        bundles through per-shard evaluation first, so the whole policy
        algebra (and any user subclass) works on
        :class:`repro.data.sharding.ShardedColumnarDatabase` without
        each implementation knowing sharding exists.
        """
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("evaluate_batch")
        if impl is not None and not getattr(impl, "_shard_aware", False):
            cls.evaluate_batch = _shard_aware(impl)

    @abstractmethod
    def __call__(self, record: Record) -> int:
        """Return 0 if ``record`` is sensitive, 1 if non-sensitive."""

    def cache_key(self) -> tuple | None:
        """A hashable value identity, or ``None`` for opaque policies.

        Equal keys must imply identical labelling of every record —
        this is what lets a cache (e.g. the release server's mask
        cache) treat two policy *objects* as the same policy.
        Predicate-based policies (``AttributePolicy``, ``LambdaPolicy``)
        cannot derive one from an opaque callable and return ``None``,
        falling back to object-identity caching.
        """
        return None

    def to_spec(self) -> dict:
        """A JSON-serializable spec that reconstructs this policy.

        The wire format of the shard-worker runtime: a policy crosses a
        process boundary as a small dict, and
        :func:`repro.core.policy_language.policy_from_spec` rebuilds an
        equivalent policy (identical ``cache_key()``, bit-identical
        masks) on the other side.  Policies wrapping opaque callables
        raise :class:`SpecUnsupported`; everything else in the algebra
        round-trips losslessly.
        """
        raise SpecUnsupported(
            f"{type(self).__name__} wraps an opaque predicate and has no "
            "serializable spec; build it from the declarative policy "
            "language (repro.core.policy_language) to make it portable"
        )

    @_shard_aware
    def evaluate_batch(self, columns) -> np.ndarray:
        """Vectorized evaluation over a column bundle.

        ``columns`` is anything indexable by attribute name that yields
        per-record numpy arrays — a :class:`repro.data.columnar.ColumnarDatabase`
        or a plain ``dict`` of arrays — or a sharded database, which is
        evaluated per shard and concatenated.  Returns an int8 array of
        ``SENSITIVE``/``NON_SENSITIVE`` labels, one per record,
        bit-identical to calling the policy on each record.

        Subclasses with a natural numpy formulation override this; the
        base implementation is the per-record fallback, so every policy
        works on the columnar path.
        """
        n = _bundle_length(columns)
        return np.fromiter(
            (self(r) for r in _iter_bundle_records(columns)),
            dtype=MASK_DTYPE,
            count=n,
        )

    def is_sensitive(self, record: Record) -> bool:
        return self(record) == SENSITIVE

    def is_non_sensitive(self, record: Record) -> bool:
        return self(record) == NON_SENSITIVE

    def sensitive_subset(self, records: Iterable[Record]) -> list[Record]:
        return [r for r in records if self(r) == SENSITIVE]

    def non_sensitive_subset(self, records: Iterable[Record]) -> list[Record]:
        return [r for r in records if self(r) == NON_SENSITIVE]

    def partition(
        self, records: Iterable[Record]
    ) -> tuple[list[Record], list[Record]]:
        """Split ``records`` into (sensitive, non_sensitive) lists."""
        sensitive: list[Record] = []
        non_sensitive: list[Record] = []
        for r in records:
            if self(r) == SENSITIVE:
                sensitive.append(r)
            else:
                non_sensitive.append(r)
        return sensitive, non_sensitive

    def sensitive_fraction(self, records: Sequence[Record]) -> float:
        """Fraction of ``records`` the policy marks sensitive."""
        if not records:
            raise ValueError("cannot compute fraction of an empty collection")
        return sum(1 for r in records if self(r) == SENSITIVE) / len(records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class LambdaPolicy(Policy):
    """Policy defined by an arbitrary predicate.

    ``sensitive_when`` receives a record and returns True when the record
    is *sensitive* (the predicate convention is usually easier to read
    than the paper's 0/1 encoding).  ``sensitive_when_batch``, when
    given, receives a column bundle and returns a boolean per-record
    array — the vectorized form used by ``evaluate_batch`` (with a
    per-record fallback if it raises).
    """

    def __init__(
        self,
        sensitive_when: Callable[[Record], bool],
        name: str = "lambda",
        sensitive_when_batch: Callable[[object], np.ndarray] | None = None,
    ):
        self._sensitive_when = sensitive_when
        self._sensitive_when_batch = sensitive_when_batch
        self.name = name

    def __call__(self, record: Record) -> int:
        return SENSITIVE if self._sensitive_when(record) else NON_SENSITIVE

    def evaluate_batch(self, columns) -> np.ndarray:
        if self._sensitive_when_batch is not None:
            try:
                sensitive = np.asarray(self._sensitive_when_batch(columns))
            except Exception:
                return super().evaluate_batch(columns)
            if sensitive.shape == (_bundle_length(columns),):
                return _mask_from_bool(sensitive.astype(bool))
        return super().evaluate_batch(columns)


class AttributePolicy(Policy):
    """Record is sensitive when ``predicate(record[attribute])`` holds.

    Records are mappings (dict-like); e.g. the paper's "minors are
    sensitive" is ``AttributePolicy("age", lambda a: a <= 17)``.
    """

    def __init__(
        self,
        attribute: str,
        predicate: Callable[[object], bool],
        name: str | None = None,
    ):
        self.attribute = attribute
        self._predicate = predicate
        self.name = name or f"attr:{attribute}"

    def __call__(self, record: Record) -> int:
        value = record[self.attribute]  # type: ignore[index]
        return SENSITIVE if self._predicate(value) else NON_SENSITIVE

    def evaluate_batch(self, columns) -> np.ndarray:
        """Vectorized when the predicate broadcasts **elementwise**.

        Elementwise predicates (comparisons, arithmetic tests) evaluate
        on the whole column at once; predicates that cannot broadcast
        (e.g. ones using ``in`` or branching on the value) fall back to
        the exact per-record loop.  A predicate that broadcasts but is
        not elementwise (e.g. one comparing against an aggregate of its
        input like ``v > v.mean()``) cannot be detected in general; the
        spot check below catches the common cases, but such predicates
        are outside the vectorization contract — use the per-record
        path (or an explicit elementwise formulation) for them.
        """
        values = np.asarray(_column(columns, self.attribute))
        try:
            result = np.asarray(self._predicate(values))
        except Exception:
            result = None
        if result is not None and result.shape == values.shape:
            # Spot-check a few positions against scalar evaluation to
            # catch broadcastable-but-not-elementwise predicates.
            n = len(values)
            probes = {0, n // 2, n - 1} if n else set()
            if all(
                bool(self._predicate(values[i])) == bool(result[i])
                for i in probes
            ):
                return _mask_from_bool(result.astype(bool))
        sensitive = np.fromiter(
            (bool(self._predicate(v)) for v in values),
            dtype=bool,
            count=len(values),
        )
        return _mask_from_bool(sensitive)


class SensitiveValuePolicy(Policy):
    """Record is sensitive when ``record[attribute]`` is in a fixed set.

    Models value-based policies such as "trajectories through the
    smoker's lounge are sensitive".
    """

    def __init__(self, attribute: str, sensitive_values: Iterable[object], name: str | None = None):
        self.attribute = attribute
        self.sensitive_values = frozenset(sensitive_values)
        self.name = name or f"values:{attribute}"

    def __call__(self, record: Record) -> int:
        value = record[self.attribute]  # type: ignore[index]
        return SENSITIVE if value in self.sensitive_values else NON_SENSITIVE

    def cache_key(self) -> tuple:
        return ("values", self.attribute, self.sensitive_values)

    def to_spec(self) -> dict:
        return {
            "kind": "values",
            "attr": self.attribute,
            "values": sorted_plain_values(self.sensitive_values),
            "name": self.name,
        }

    def evaluate_batch(self, columns) -> np.ndarray:
        values = np.asarray(_column(columns, self.attribute))
        try:
            hit = members_isin(values, self.sensitive_values)
        except BatchUnsupported:
            return super().evaluate_batch(columns)
        return _mask_from_bool(hit)


class OptInPolicy(Policy):
    """Record is non-sensitive only when the user opted in to sharing.

    ``record[attribute]`` is truthy for opt-in users.  Models the GDPR
    affirmative-consent example of the paper's introduction.
    """

    def __init__(self, attribute: str = "opt_in", name: str = "opt-in"):
        self.attribute = attribute
        self.name = name

    def __call__(self, record: Record) -> int:
        return NON_SENSITIVE if record[self.attribute] else SENSITIVE  # type: ignore[index]

    def cache_key(self) -> tuple:
        return ("opt_in", self.attribute)

    def to_spec(self) -> dict:
        return {"kind": "opt_in", "attr": self.attribute, "name": self.name}

    def evaluate_batch(self, columns) -> np.ndarray:
        values = np.asarray(_column(columns, self.attribute))
        return _mask_from_bool(~values.astype(bool))


class AllSensitivePolicy(Policy):
    """``P_all`` (Definition 3.7): every record is sensitive.

    OSDP under ``P_all`` is exactly bounded differential privacy
    (Lemmas 3.1 and 3.2).
    """

    name = "P_all"

    def __call__(self, record: Record) -> int:
        return SENSITIVE

    def cache_key(self) -> tuple:
        return ("all_sensitive",)

    def to_spec(self) -> dict:
        return {"kind": "all_sensitive"}

    def evaluate_batch(self, columns) -> np.ndarray:
        return np.full(_bundle_length(columns), SENSITIVE, dtype=MASK_DTYPE)


class AllNonSensitivePolicy(Policy):
    """The trivial policy: every record non-sensitive (no constraint).

    The paper excludes this policy from consideration (it is degenerate —
    any non-private algorithm vacuously satisfies OSDP under it); it is
    provided as the top element of the relaxation order for the algebra
    tests.
    """

    name = "P_none"

    def __call__(self, record: Record) -> int:
        return NON_SENSITIVE

    def cache_key(self) -> tuple:
        return ("all_non_sensitive",)

    def to_spec(self) -> dict:
        return {"kind": "all_non_sensitive"}

    def evaluate_batch(self, columns) -> np.ndarray:
        return np.full(_bundle_length(columns), NON_SENSITIVE, dtype=MASK_DTYPE)


class MinimumRelaxationPolicy(Policy):
    """``P_mr(r) = max_i P_i(r)`` (Definition 3.6).

    A record is sensitive under the minimum relaxation only if it is
    sensitive under *every* constituent policy; ``P_mr`` is the strictest
    policy that is a relaxation of each ``P_i``.
    """

    def __init__(self, policies: Sequence[Policy]):
        if not policies:
            raise ValueError("minimum relaxation needs at least one policy")
        self.policies = tuple(policies)
        self.name = "mr(" + ",".join(p.name for p in self.policies) + ")"

    def __call__(self, record: Record) -> int:
        return max(p(record) for p in self.policies)

    def cache_key(self) -> tuple | None:
        return _combined_cache_key("mr", self.policies)

    def to_spec(self) -> dict:
        return {"kind": "mr", "policies": [p.to_spec() for p in self.policies]}

    def evaluate_batch(self, columns) -> np.ndarray:
        return np.maximum.reduce(
            [p.evaluate_batch(columns) for p in self.policies]
        )


class IntersectionPolicy(Policy):
    """``P(r) = min_i P_i(r)``: sensitive under *any* constituent policy.

    The greatest lower bound of the relaxation order — the strictest
    combination.  Useful for policy specification (Section 7): combining
    a legislative policy with a user-preference policy conservatively.
    """

    def __init__(self, policies: Sequence[Policy]):
        if not policies:
            raise ValueError("intersection needs at least one policy")
        self.policies = tuple(policies)
        self.name = "and(" + ",".join(p.name for p in self.policies) + ")"

    def __call__(self, record: Record) -> int:
        return min(p(record) for p in self.policies)

    def cache_key(self) -> tuple | None:
        return _combined_cache_key("and", self.policies)

    def to_spec(self) -> dict:
        return {"kind": "and", "policies": [p.to_spec() for p in self.policies]}

    def evaluate_batch(self, columns) -> np.ndarray:
        return np.minimum.reduce(
            [p.evaluate_batch(columns) for p in self.policies]
        )


def _combined_cache_key(tag: str, policies: Sequence[Policy]) -> tuple | None:
    """Value key for a policy combination; None if any child is opaque."""
    keys = tuple(p.cache_key() for p in policies)
    if any(k is None for k in keys):
        return None
    return (tag, keys)


def minimum_relaxation(*policies: Policy) -> Policy:
    """Minimum relaxation of the given policies (Definition 3.6)."""
    if len(policies) == 1:
        return policies[0]
    return MinimumRelaxationPolicy(policies)


def strictest_combination(*policies: Policy) -> Policy:
    """Policy sensitive wherever any input policy is sensitive."""
    if len(policies) == 1:
        return policies[0]
    return IntersectionPolicy(policies)


def is_relaxation_of(
    weaker: Policy, stricter: Policy, records: Iterable[Record]
) -> bool:
    """Check ``weaker <=_p stricter`` (Definition 3.5) over ``records``.

    ``weaker`` is a relaxation of ``stricter`` iff ``weaker(r) >=
    stricter(r)`` for every record — every record sensitive under
    ``weaker`` is also sensitive under ``stricter``.  Policies are
    black-box functions, so the check is necessarily relative to a
    (finite) record universe.
    """
    return all(weaker(r) >= stricter(r) for r in records)


def validate_non_trivial(policy: Policy, records: Sequence[Record]) -> None:
    """Raise if ``policy`` is trivial on ``records`` (Section 3.1).

    The paper's algorithms assume at least one sensitive and one
    non-sensitive record; with all-sensitive use plain DP, with
    all-non-sensitive no privacy machinery is needed.
    """
    labels = {policy(r) for r in records}
    if labels == {SENSITIVE}:
        raise ValueError(
            "policy marks every record sensitive; use a DP mechanism directly"
        )
    if labels == {NON_SENSITIVE}:
        raise ValueError(
            "policy marks every record non-sensitive; no private mechanism needed"
        )
