"""Policy functions (Definition 3.1) and the relaxation algebra.

A policy function ``P : T -> {0, 1}`` labels each record as sensitive
(``P(r) = 0``) or non-sensitive (``P(r) = 1``).  The paper's examples —
"minors are sensitive", "opted-out users are sensitive" — are expressible
with :class:`AttributePolicy` and :class:`OptInPolicy`; arbitrary
predicates with :class:`LambdaPolicy`.

The relaxation partial order (Definition 3.5) and minimum relaxation
(Definition 3.6) drive the composition theorem: composing OSDP mechanisms
with different policies yields a guarantee under the *minimum relaxation*
``P_mr(r) = max_i P_i(r)`` — a record stays protected only if *every*
constituent policy protected it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Sequence

Record = object

SENSITIVE = 0
NON_SENSITIVE = 1


class Policy(ABC):
    """A policy function mapping records to {0 (sensitive), 1 (non-sensitive)}."""

    name: str = "policy"

    @abstractmethod
    def __call__(self, record: Record) -> int:
        """Return 0 if ``record`` is sensitive, 1 if non-sensitive."""

    def is_sensitive(self, record: Record) -> bool:
        return self(record) == SENSITIVE

    def is_non_sensitive(self, record: Record) -> bool:
        return self(record) == NON_SENSITIVE

    def sensitive_subset(self, records: Iterable[Record]) -> list[Record]:
        return [r for r in records if self(r) == SENSITIVE]

    def non_sensitive_subset(self, records: Iterable[Record]) -> list[Record]:
        return [r for r in records if self(r) == NON_SENSITIVE]

    def partition(
        self, records: Iterable[Record]
    ) -> tuple[list[Record], list[Record]]:
        """Split ``records`` into (sensitive, non_sensitive) lists."""
        sensitive: list[Record] = []
        non_sensitive: list[Record] = []
        for r in records:
            if self(r) == SENSITIVE:
                sensitive.append(r)
            else:
                non_sensitive.append(r)
        return sensitive, non_sensitive

    def sensitive_fraction(self, records: Sequence[Record]) -> float:
        """Fraction of ``records`` the policy marks sensitive."""
        if not records:
            raise ValueError("cannot compute fraction of an empty collection")
        return sum(1 for r in records if self(r) == SENSITIVE) / len(records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class LambdaPolicy(Policy):
    """Policy defined by an arbitrary predicate.

    ``sensitive_when`` receives a record and returns True when the record
    is *sensitive* (the predicate convention is usually easier to read
    than the paper's 0/1 encoding).
    """

    def __init__(self, sensitive_when: Callable[[Record], bool], name: str = "lambda"):
        self._sensitive_when = sensitive_when
        self.name = name

    def __call__(self, record: Record) -> int:
        return SENSITIVE if self._sensitive_when(record) else NON_SENSITIVE


class AttributePolicy(Policy):
    """Record is sensitive when ``predicate(record[attribute])`` holds.

    Records are mappings (dict-like); e.g. the paper's "minors are
    sensitive" is ``AttributePolicy("age", lambda a: a <= 17)``.
    """

    def __init__(
        self,
        attribute: str,
        predicate: Callable[[object], bool],
        name: str | None = None,
    ):
        self.attribute = attribute
        self._predicate = predicate
        self.name = name or f"attr:{attribute}"

    def __call__(self, record: Record) -> int:
        value = record[self.attribute]  # type: ignore[index]
        return SENSITIVE if self._predicate(value) else NON_SENSITIVE


class SensitiveValuePolicy(Policy):
    """Record is sensitive when ``record[attribute]`` is in a fixed set.

    Models value-based policies such as "trajectories through the
    smoker's lounge are sensitive".
    """

    def __init__(self, attribute: str, sensitive_values: Iterable[object], name: str | None = None):
        self.attribute = attribute
        self.sensitive_values = frozenset(sensitive_values)
        self.name = name or f"values:{attribute}"

    def __call__(self, record: Record) -> int:
        value = record[self.attribute]  # type: ignore[index]
        return SENSITIVE if value in self.sensitive_values else NON_SENSITIVE


class OptInPolicy(Policy):
    """Record is non-sensitive only when the user opted in to sharing.

    ``record[attribute]`` is truthy for opt-in users.  Models the GDPR
    affirmative-consent example of the paper's introduction.
    """

    def __init__(self, attribute: str = "opt_in", name: str = "opt-in"):
        self.attribute = attribute
        self.name = name

    def __call__(self, record: Record) -> int:
        return NON_SENSITIVE if record[self.attribute] else SENSITIVE  # type: ignore[index]


class AllSensitivePolicy(Policy):
    """``P_all`` (Definition 3.7): every record is sensitive.

    OSDP under ``P_all`` is exactly bounded differential privacy
    (Lemmas 3.1 and 3.2).
    """

    name = "P_all"

    def __call__(self, record: Record) -> int:
        return SENSITIVE


class AllNonSensitivePolicy(Policy):
    """The trivial policy: every record non-sensitive (no constraint).

    The paper excludes this policy from consideration (it is degenerate —
    any non-private algorithm vacuously satisfies OSDP under it); it is
    provided as the top element of the relaxation order for the algebra
    tests.
    """

    name = "P_none"

    def __call__(self, record: Record) -> int:
        return NON_SENSITIVE


class MinimumRelaxationPolicy(Policy):
    """``P_mr(r) = max_i P_i(r)`` (Definition 3.6).

    A record is sensitive under the minimum relaxation only if it is
    sensitive under *every* constituent policy; ``P_mr`` is the strictest
    policy that is a relaxation of each ``P_i``.
    """

    def __init__(self, policies: Sequence[Policy]):
        if not policies:
            raise ValueError("minimum relaxation needs at least one policy")
        self.policies = tuple(policies)
        self.name = "mr(" + ",".join(p.name for p in self.policies) + ")"

    def __call__(self, record: Record) -> int:
        return max(p(record) for p in self.policies)


class IntersectionPolicy(Policy):
    """``P(r) = min_i P_i(r)``: sensitive under *any* constituent policy.

    The greatest lower bound of the relaxation order — the strictest
    combination.  Useful for policy specification (Section 7): combining
    a legislative policy with a user-preference policy conservatively.
    """

    def __init__(self, policies: Sequence[Policy]):
        if not policies:
            raise ValueError("intersection needs at least one policy")
        self.policies = tuple(policies)
        self.name = "and(" + ",".join(p.name for p in self.policies) + ")"

    def __call__(self, record: Record) -> int:
        return min(p(record) for p in self.policies)


def minimum_relaxation(*policies: Policy) -> Policy:
    """Minimum relaxation of the given policies (Definition 3.6)."""
    if len(policies) == 1:
        return policies[0]
    return MinimumRelaxationPolicy(policies)


def strictest_combination(*policies: Policy) -> Policy:
    """Policy sensitive wherever any input policy is sensitive."""
    if len(policies) == 1:
        return policies[0]
    return IntersectionPolicy(policies)


def is_relaxation_of(
    weaker: Policy, stricter: Policy, records: Iterable[Record]
) -> bool:
    """Check ``weaker <=_p stricter`` (Definition 3.5) over ``records``.

    ``weaker`` is a relaxation of ``stricter`` iff ``weaker(r) >=
    stricter(r)`` for every record — every record sensitive under
    ``weaker`` is also sensitive under ``stricter``.  Policies are
    black-box functions, so the check is necessarily relative to a
    (finite) record universe.
    """
    return all(weaker(r) >= stricter(r) for r in records)


def validate_non_trivial(policy: Policy, records: Sequence[Record]) -> None:
    """Raise if ``policy`` is trivial on ``records`` (Section 3.1).

    The paper's algorithms assume at least one sensitive and one
    non-sensitive record; with all-sensitive use plain DP, with
    all-non-sensitive no privacy machinery is needed.
    """
    labels = {policy(r) for r in records}
    if labels == {SENSITIVE}:
        raise ValueError(
            "policy marks every record sensitive; use a DP mechanism directly"
        )
    if labels == {NON_SENSITIVE}:
        raise ValueError(
            "policy marks every record non-sensitive; no private mechanism needed"
        )
