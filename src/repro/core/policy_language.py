"""A small declarative policy-specification language (paper §7).

The paper's future-work section calls for "mechanisms to specify
comprehensive policies that dictate data sensitivity".  This module
provides a JSON-serializable spec format that compiles to
:class:`repro.core.policy.Policy` objects, so policies can live in
configuration rather than code:

    {"any": [
        {"attr": "age", "op": "<=", "value": 17},
        {"attr": "opt_in", "op": "==", "value": False},
    ]}

Semantics: a spec describes when a record is **sensitive**.

* leaf specs compare one attribute: ``op`` in {==, !=, <, <=, >, >=, in,
  not_in};
* ``{"any": [...]}`` — sensitive when any sub-spec matches (union of
  sensitive sets: the strictest combination);
* ``{"all": [...]}`` — sensitive when every sub-spec matches;
* ``{"not": ...}`` — negation.

``compile_policy`` returns a policy whose ``name`` is a canonical
rendering of the spec, and ``policy_spec_fingerprint`` gives a stable
identifier for audit ledgers.

This module is also the home of the **policy wire format** used by the
shard-worker runtime (:mod:`repro.data.workers`): every policy in the
algebra exposes ``to_spec()`` and :func:`policy_from_spec` rebuilds an
equivalent policy — identical ``cache_key()``, bit-identical masks —
from the plain-dict form, so work units cross process (and, later,
node) boundaries as data rather than live Python objects.  Predicate
specs compiled here are themselves part of that format:
``compile_policy`` returns a :class:`CompiledSpecPolicy` that remembers
its spec, keys caches by its canonical rendering, and round-trips
losslessly.  Third-party policy classes join the format through
:func:`register_policy_kind`.
"""

from __future__ import annotations

import hashlib
import json
import operator
from typing import Callable, Mapping

import numpy as np

from repro.core.policy import (
    AllNonSensitivePolicy,
    AllSensitivePolicy,
    IntersectionPolicy,
    LambdaPolicy,
    MinimumRelaxationPolicy,
    OptInPolicy,
    Policy,
    SensitiveValuePolicy,
    members_isin,
)

_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class PolicySpecError(ValueError):
    """Raised for malformed policy specifications."""


def _compile_leaf(spec: Mapping) -> Callable[[object], bool]:
    missing = {"attr", "op", "value"} - set(spec)
    if missing:
        raise PolicySpecError(f"leaf spec missing keys {sorted(missing)}: {spec}")
    attr, op, value = spec["attr"], spec["op"], spec["value"]
    if op in _COMPARATORS:
        compare = _COMPARATORS[op]
        return lambda record: compare(record[attr], value)
    if op == "in":
        allowed = frozenset(value)
        return lambda record: record[attr] in allowed
    if op == "not_in":
        blocked = frozenset(value)
        return lambda record: record[attr] not in blocked
    raise PolicySpecError(f"unknown operator {op!r}")


def _compile_leaf_batch(spec: Mapping) -> Callable[[object], np.ndarray]:
    """Columnar form of a leaf: one vectorized op over the attribute column.

    The comparison operators broadcast over numpy columns directly;
    ``in``/``not_in`` lower to the guarded ``members_isin`` (which
    raises when vectorized membership would diverge from Python
    semantics — NaN members, dtype-coerced mixed member lists).  Used
    by the compiled policy's ``evaluate_batch``, which falls back to
    the per-record predicate whenever the batch evaluation raises.
    """
    attr, op, value = spec["attr"], spec["op"], spec["value"]
    if op in _COMPARATORS:
        compare = _COMPARATORS[op]
        return lambda columns: np.asarray(compare(np.asarray(columns[attr]), value))
    if op == "in":
        allowed = list(value)
        return lambda columns: members_isin(np.asarray(columns[attr]), allowed)
    if op == "not_in":
        blocked = list(value)
        return lambda columns: ~members_isin(np.asarray(columns[attr]), blocked)
    raise PolicySpecError(f"unknown operator {op!r}")


def _compile_predicate(spec) -> Callable[[object], bool]:
    if not isinstance(spec, Mapping):
        raise PolicySpecError(f"spec must be a mapping, got {type(spec).__name__}")
    combinators = {"any", "all", "not"} & set(spec)
    if len(combinators) > 1:
        raise PolicySpecError(f"ambiguous spec with {sorted(combinators)}")
    if "any" in spec:
        subs = [_compile_predicate(s) for s in _require_list(spec["any"], "any")]
        return lambda record: any(sub(record) for sub in subs)
    if "all" in spec:
        subs = [_compile_predicate(s) for s in _require_list(spec["all"], "all")]
        return lambda record: all(sub(record) for sub in subs)
    if "not" in spec:
        sub = _compile_predicate(spec["not"])
        return lambda record: not sub(record)
    return _compile_leaf(spec)


def _compile_predicate_batch(spec) -> Callable[[object], np.ndarray]:
    """Columnar mirror of ``_compile_predicate``: boolean-array algebra."""
    if not isinstance(spec, Mapping):
        raise PolicySpecError(f"spec must be a mapping, got {type(spec).__name__}")
    combinators = {"any", "all", "not"} & set(spec)
    if len(combinators) > 1:
        raise PolicySpecError(f"ambiguous spec with {sorted(combinators)}")
    if "any" in spec:
        subs = [
            _compile_predicate_batch(s) for s in _require_list(spec["any"], "any")
        ]
        return lambda columns: np.logical_or.reduce(
            [sub(columns) for sub in subs]
        )
    if "all" in spec:
        subs = [
            _compile_predicate_batch(s) for s in _require_list(spec["all"], "all")
        ]
        return lambda columns: np.logical_and.reduce(
            [sub(columns) for sub in subs]
        )
    if "not" in spec:
        sub = _compile_predicate_batch(spec["not"])
        return lambda columns: np.logical_not(sub(columns))
    return _compile_leaf_batch(spec)


def _require_list(value, keyword: str) -> list:
    if not isinstance(value, (list, tuple)) or not value:
        raise PolicySpecError(f"{keyword!r} requires a non-empty list")
    return list(value)


def _canonical(spec) -> str:
    return json.dumps(spec, sort_keys=True, default=str)


def canonical_spec(spec) -> str:
    """The canonical JSON rendering of a spec.

    Key-order independent, so two specs describing the same policy or
    binning render identically — the string the worker runtime and the
    compiled-policy ``cache_key()`` key their caches by.
    """
    return _canonical(spec)


class CompiledSpecPolicy(LambdaPolicy):
    """A policy compiled from a declarative spec, and able to return to it.

    Unlike a hand-built :class:`~repro.core.policy.LambdaPolicy`, a
    compiled policy is *transparent*: it remembers the spec it was
    compiled from, so it (a) serializes losslessly via :meth:`to_spec`
    and (b) has a value ``cache_key()`` — the canonical spec rendering —
    letting caches (the release server, the shard workers) treat two
    independently compiled copies of the same spec as one policy.
    """

    def __init__(self, spec: Mapping, name: str | None = None):
        super().__init__(
            _compile_predicate(spec),
            name=name or f"spec:{_canonical(spec)}",
            sensitive_when_batch=_compile_predicate_batch(spec),
        )
        self.spec = spec

    def cache_key(self) -> tuple:
        return ("spec", _canonical(self.spec))

    def to_spec(self) -> dict:
        return {"kind": "predicate", "when": self.spec, "name": self.name}

    def __reduce__(self):
        # The compiled closures cannot pickle, but the spec can — so a
        # compiled policy crosses process boundaries by recompiling,
        # which the round-trip contract guarantees is lossless.  This
        # is what lets process executors ship e.g. a non_sensitive()
        # filter built from a compiled policy.
        return (CompiledSpecPolicy, (self.spec, self.name))


def compile_policy(spec: Mapping, name: str | None = None) -> Policy:
    """Compile a declarative spec into a Policy (sensitive-when semantics).

    The compiled policy carries both the per-record predicate and its
    vectorized columnar form, so it participates in the fast
    ``evaluate_batch`` path of :class:`repro.data.columnar.ColumnarDatabase`;
    it also remembers ``spec`` itself, making the result serializable
    and value-cacheable (see :class:`CompiledSpecPolicy`).
    """
    return CompiledSpecPolicy(spec, name=name)


def policy_spec_fingerprint(spec: Mapping) -> str:
    """Stable short hash of a spec, for accountant ledgers and audits."""
    digest = hashlib.sha256(_canonical(spec).encode()).hexdigest()
    return digest[:16]


def validate_spec(spec: Mapping) -> None:
    """Raise :class:`PolicySpecError` if the spec does not compile."""
    _compile_predicate(spec)


# ----------------------------------------------------------------------
# Policy wire format: to_spec() round-trips through policy_from_spec()
# ----------------------------------------------------------------------


def policy_to_spec(policy: Policy) -> dict:
    """The JSON-serializable spec of a policy (``policy.to_spec()``).

    Raises :class:`PolicySpecError` for policies that wrap opaque
    callables — those cannot cross a process boundary and must be
    rebuilt from the declarative language instead.
    """
    from repro.core.policy import SpecUnsupported

    try:
        return policy.to_spec()
    except SpecUnsupported as exc:
        raise PolicySpecError(str(exc)) from exc


def _load_sensitive_aps(spec: Mapping) -> Policy:
    # Deferred import: repro.data.tippers imports this module's sibling
    # repro.core.policy, so a top-level import would be cyclic.
    from repro.data.tippers import SensitiveAPPolicy

    return SensitiveAPPolicy(
        spec["aps"], name=spec.get("name", "sensitive-aps")
    )


_POLICY_KINDS: dict[str, Callable[[Mapping], Policy]] = {
    "predicate": lambda spec: CompiledSpecPolicy(
        spec["when"], name=spec.get("name")
    ),
    "values": lambda spec: SensitiveValuePolicy(
        spec["attr"], spec["values"], name=spec.get("name")
    ),
    "opt_in": lambda spec: OptInPolicy(
        spec.get("attr", "opt_in"), name=spec.get("name", "opt-in")
    ),
    "all_sensitive": lambda spec: AllSensitivePolicy(),
    "all_non_sensitive": lambda spec: AllNonSensitivePolicy(),
    "mr": lambda spec: MinimumRelaxationPolicy(
        [policy_from_spec(s) for s in spec["policies"]]
    ),
    "and": lambda spec: IntersectionPolicy(
        [policy_from_spec(s) for s in spec["policies"]]
    ),
    "sensitive_aps": _load_sensitive_aps,
}


def register_policy_kind(
    kind: str, loader: Callable[[Mapping], Policy]
) -> None:
    """Register a loader for a custom policy ``kind``.

    ``loader`` receives the whole spec dict and must return a policy
    whose ``to_spec()`` reproduces it — the round-trip contract every
    built-in kind satisfies (and the round-trip test suite checks).
    """
    if kind in _POLICY_KINDS:
        raise ValueError(f"policy kind {kind!r} already registered")
    _POLICY_KINDS[kind] = loader


def policy_from_spec(spec: Mapping) -> Policy:
    """Rebuild a policy from its spec — the inverse of :func:`policy_to_spec`.

    A spec without a ``kind`` key is a bare predicate spec (the
    declarative language above) and compiles directly; specs with a
    ``kind`` dispatch to the registered loader.  The reconstruction is
    lossless: equal ``cache_key()`` and bit-identical masks on every
    column bundle.
    """
    if not isinstance(spec, Mapping):
        raise PolicySpecError(
            f"policy spec must be a mapping, got {type(spec).__name__}"
        )
    kind = spec.get("kind")
    if kind is None:
        return compile_policy(spec)
    loader = _POLICY_KINDS.get(kind)
    if loader is None:
        raise PolicySpecError(
            f"unknown policy kind {kind!r}; registered: "
            f"{sorted(_POLICY_KINDS)}"
        )
    return loader(spec)
