"""A small declarative policy-specification language (paper §7).

The paper's future-work section calls for "mechanisms to specify
comprehensive policies that dictate data sensitivity".  This module
provides a JSON-serializable spec format that compiles to
:class:`repro.core.policy.Policy` objects, so policies can live in
configuration rather than code:

    {"any": [
        {"attr": "age", "op": "<=", "value": 17},
        {"attr": "opt_in", "op": "==", "value": False},
    ]}

Semantics: a spec describes when a record is **sensitive**.

* leaf specs compare one attribute: ``op`` in {==, !=, <, <=, >, >=, in,
  not_in};
* ``{"any": [...]}`` — sensitive when any sub-spec matches (union of
  sensitive sets: the strictest combination);
* ``{"all": [...]}`` — sensitive when every sub-spec matches;
* ``{"not": ...}`` — negation.

``compile_policy`` returns a policy whose ``name`` is a canonical
rendering of the spec, and ``policy_spec_fingerprint`` gives a stable
identifier for audit ledgers.
"""

from __future__ import annotations

import hashlib
import json
import operator
from typing import Callable, Mapping

import numpy as np

from repro.core.policy import LambdaPolicy, Policy, members_isin

_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class PolicySpecError(ValueError):
    """Raised for malformed policy specifications."""


def _compile_leaf(spec: Mapping) -> Callable[[object], bool]:
    missing = {"attr", "op", "value"} - set(spec)
    if missing:
        raise PolicySpecError(f"leaf spec missing keys {sorted(missing)}: {spec}")
    attr, op, value = spec["attr"], spec["op"], spec["value"]
    if op in _COMPARATORS:
        compare = _COMPARATORS[op]
        return lambda record: compare(record[attr], value)
    if op == "in":
        allowed = frozenset(value)
        return lambda record: record[attr] in allowed
    if op == "not_in":
        blocked = frozenset(value)
        return lambda record: record[attr] not in blocked
    raise PolicySpecError(f"unknown operator {op!r}")


def _compile_leaf_batch(spec: Mapping) -> Callable[[object], np.ndarray]:
    """Columnar form of a leaf: one vectorized op over the attribute column.

    The comparison operators broadcast over numpy columns directly;
    ``in``/``not_in`` lower to the guarded ``members_isin`` (which
    raises when vectorized membership would diverge from Python
    semantics — NaN members, dtype-coerced mixed member lists).  Used
    by the compiled policy's ``evaluate_batch``, which falls back to
    the per-record predicate whenever the batch evaluation raises.
    """
    attr, op, value = spec["attr"], spec["op"], spec["value"]
    if op in _COMPARATORS:
        compare = _COMPARATORS[op]
        return lambda columns: np.asarray(compare(np.asarray(columns[attr]), value))
    if op == "in":
        allowed = list(value)
        return lambda columns: members_isin(np.asarray(columns[attr]), allowed)
    if op == "not_in":
        blocked = list(value)
        return lambda columns: ~members_isin(np.asarray(columns[attr]), blocked)
    raise PolicySpecError(f"unknown operator {op!r}")


def _compile_predicate(spec) -> Callable[[object], bool]:
    if not isinstance(spec, Mapping):
        raise PolicySpecError(f"spec must be a mapping, got {type(spec).__name__}")
    combinators = {"any", "all", "not"} & set(spec)
    if len(combinators) > 1:
        raise PolicySpecError(f"ambiguous spec with {sorted(combinators)}")
    if "any" in spec:
        subs = [_compile_predicate(s) for s in _require_list(spec["any"], "any")]
        return lambda record: any(sub(record) for sub in subs)
    if "all" in spec:
        subs = [_compile_predicate(s) for s in _require_list(spec["all"], "all")]
        return lambda record: all(sub(record) for sub in subs)
    if "not" in spec:
        sub = _compile_predicate(spec["not"])
        return lambda record: not sub(record)
    return _compile_leaf(spec)


def _compile_predicate_batch(spec) -> Callable[[object], np.ndarray]:
    """Columnar mirror of ``_compile_predicate``: boolean-array algebra."""
    if not isinstance(spec, Mapping):
        raise PolicySpecError(f"spec must be a mapping, got {type(spec).__name__}")
    combinators = {"any", "all", "not"} & set(spec)
    if len(combinators) > 1:
        raise PolicySpecError(f"ambiguous spec with {sorted(combinators)}")
    if "any" in spec:
        subs = [
            _compile_predicate_batch(s) for s in _require_list(spec["any"], "any")
        ]
        return lambda columns: np.logical_or.reduce(
            [sub(columns) for sub in subs]
        )
    if "all" in spec:
        subs = [
            _compile_predicate_batch(s) for s in _require_list(spec["all"], "all")
        ]
        return lambda columns: np.logical_and.reduce(
            [sub(columns) for sub in subs]
        )
    if "not" in spec:
        sub = _compile_predicate_batch(spec["not"])
        return lambda columns: np.logical_not(sub(columns))
    return _compile_leaf_batch(spec)


def _require_list(value, keyword: str) -> list:
    if not isinstance(value, (list, tuple)) or not value:
        raise PolicySpecError(f"{keyword!r} requires a non-empty list")
    return list(value)


def _canonical(spec) -> str:
    return json.dumps(spec, sort_keys=True, default=str)


def compile_policy(spec: Mapping, name: str | None = None) -> Policy:
    """Compile a declarative spec into a Policy (sensitive-when semantics).

    The compiled policy carries both the per-record predicate and its
    vectorized columnar form, so it participates in the fast
    ``evaluate_batch`` path of :class:`repro.data.columnar.ColumnarDatabase`.
    """
    predicate = _compile_predicate(spec)
    batch = _compile_predicate_batch(spec)
    return LambdaPolicy(
        predicate,
        name=name or f"spec:{_canonical(spec)}",
        sensitive_when_batch=batch,
    )


def policy_spec_fingerprint(spec: Mapping) -> str:
    """Stable short hash of a spec, for accountant ledgers and audits."""
    digest = hashlib.sha256(_canonical(spec).encode()).hexdigest()
    return digest[:16]


def validate_spec(spec: Mapping) -> None:
    """Raise :class:`PolicySpecError` if the spec does not compile."""
    _compile_predicate(spec)
