"""The exclusion attack formalism (Section 3.2).

An *exclusion attack* lets an adversary sharpen their belief about a
sensitive record precisely because the record was excluded from a
release (the paper's Bob-in-the-smoker's-lounge story).  Definition 3.4
formalizes its converse: a mechanism is ``phi``-free from exclusion
attacks when, for every product prior, observing the output inflates the
posterior odds of "the target is the sensitive value x" versus "the
target is value y" by at most ``e^phi``.

This module computes those posterior odds *exactly* for finite
mechanisms over small universes, which makes the paper's claims
executable:

* Theorem 3.1 — any (P, eps)-OSDP mechanism has odds inflation <= e^eps
  under product priors;
* reveal-all access-control mechanisms (Truman / non-Truman / PDP
  ``Suppress`` with tau = inf) have *unbounded* inflation;
* Theorem 3.4 — ``Suppress`` with finite tau achieves phi = tau only.

Mechanisms are the same ``db -> {output: prob}`` callables consumed by
:mod:`repro.core.verifier`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.policy import Policy
from repro.core.verifier import DistributionFn


@dataclass(frozen=True)
class ProductPrior:
    """An adversary prior that factorizes over record positions.

    ``marginals[i]`` is the prior distribution of the record at position
    ``i`` as a mapping from record value to probability.  Theorem 3.1's
    independence assumption is exactly this factorization.
    """

    marginals: tuple[Mapping[Hashable, float], ...]

    def __post_init__(self) -> None:
        for i, marginal in enumerate(self.marginals):
            total = sum(marginal.values())
            if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
                raise ValueError(
                    f"marginal {i} sums to {total}, expected 1"
                )

    @classmethod
    def uniform(cls, universe: Sequence, n_records: int) -> "ProductPrior":
        """Uniform independent prior over ``universe`` for each position."""
        p = 1.0 / len(universe)
        marginal = {r: p for r in universe}
        return cls(marginals=tuple(marginal for _ in range(n_records)))

    @property
    def n_records(self) -> int:
        return len(self.marginals)

    def support(self, position: int) -> list[Hashable]:
        return [r for r, p in self.marginals[position].items() if p > 0]

    def database_probability(self, db: Sequence[Hashable]) -> float:
        if len(db) != self.n_records:
            raise ValueError("database size does not match prior")
        prob = 1.0
        for marginal, record in zip(self.marginals, db):
            prob *= marginal.get(record, 0.0)
        return prob

    def databases(self) -> "itertools.product":
        """All databases in the prior's support (cartesian product)."""
        return itertools.product(*(self.support(i) for i in range(self.n_records)))


@dataclass(frozen=True)
class ExclusionAttackResult:
    """Worst-case posterior odds inflation for a mechanism and prior."""

    max_inflation: float
    witness_output: Hashable | None
    witness_x: Hashable | None
    witness_y: Hashable | None

    @property
    def phi(self) -> float:
        """The tightest freedom-from-exclusion-attack parameter."""
        return math.log(self.max_inflation) if self.max_inflation > 0 else 0.0

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.max_inflation)


def _joint_output_given_value(
    mechanism: DistributionFn,
    prior: ProductPrior,
    target_index: int,
    value: Hashable,
) -> dict[Hashable, float]:
    """Pr[M(D) = o  and  r_target = value] for every output o."""
    joint: dict[Hashable, float] = {}
    fixed_prob = prior.marginals[target_index].get(value, 0.0)
    if fixed_prob == 0.0:
        return joint
    other_positions = [
        i for i in range(prior.n_records) if i != target_index
    ]
    supports = [prior.support(i) for i in other_positions]
    for rest in itertools.product(*supports):
        db = [None] * prior.n_records
        db[target_index] = value
        for pos, record in zip(other_positions, rest):
            db[pos] = record
        weight = fixed_prob
        for pos, record in zip(other_positions, rest):
            weight *= prior.marginals[pos][record]
        if weight == 0.0:
            continue
        for output, p in mechanism(tuple(db)).items():
            if p > 0:
                joint[output] = joint.get(output, 0.0) + weight * p
    return joint


def posterior_odds_ratio(
    mechanism: DistributionFn,
    prior: ProductPrior,
    output: Hashable,
    target_index: int,
    x: Hashable,
    y: Hashable,
) -> float:
    """Posterior-to-prior odds inflation for values x vs y given ``output``.

    Returns ``[Pr(r=x | o) / Pr(r=y | o)] / [Pr(r=x) / Pr(r=y)]`` which,
    by Bayes, equals ``Pr(o | r=x) / Pr(o | r=y)``.  Infinite when the
    output is impossible under ``y`` but possible under ``x``.
    """
    joint_x = _joint_output_given_value(mechanism, prior, target_index, x)
    joint_y = _joint_output_given_value(mechanism, prior, target_index, y)
    prior_x = prior.marginals[target_index].get(x, 0.0)
    prior_y = prior.marginals[target_index].get(y, 0.0)
    if prior_x <= 0 or prior_y <= 0:
        raise ValueError("both x and y must have positive prior probability")
    like_x = joint_x.get(output, 0.0) / prior_x
    like_y = joint_y.get(output, 0.0) / prior_y
    if like_x == 0.0:
        return 0.0
    if like_y == 0.0:
        return math.inf
    return like_x / like_y


def worst_case_odds_inflation(
    mechanism: DistributionFn,
    prior: ProductPrior,
    policy: Policy,
    target_index: int = 0,
) -> ExclusionAttackResult:
    """sup over outputs, sensitive x, and any y of the odds inflation.

    This is the quantity Definition 3.4 bounds by ``e^phi``; exhaustive
    over the prior's support, so intended for small demonstration
    universes.
    """
    support = prior.support(target_index)
    sensitive_values = [v for v in support if policy.is_sensitive(v)]
    if not sensitive_values:
        raise ValueError("target position has no sensitive values in support")
    joint_by_value = {
        v: _joint_output_given_value(mechanism, prior, target_index, v)
        for v in support
    }
    outputs: set[Hashable] = set()
    for joint in joint_by_value.values():
        outputs.update(joint)

    best = ExclusionAttackResult(
        max_inflation=0.0, witness_output=None, witness_x=None, witness_y=None
    )
    for x in sensitive_values:
        prior_x = prior.marginals[target_index][x]
        for y in support:
            if y == x:
                continue
            prior_y = prior.marginals[target_index][y]
            for output in outputs:
                like_x = joint_by_value[x].get(output, 0.0) / prior_x
                like_y = joint_by_value[y].get(output, 0.0) / prior_y
                if like_x == 0.0:
                    continue
                inflation = math.inf if like_y == 0.0 else like_x / like_y
                if inflation > best.max_inflation:
                    best = ExclusionAttackResult(
                        max_inflation=inflation,
                        witness_output=output,
                        witness_x=x,
                        witness_y=y,
                    )
    return best


def reveal_non_sensitive_mechanism(policy: Policy) -> DistributionFn:
    """The deterministic 'release every non-sensitive record' mechanism.

    This is the Truman-model authorized view, and equally PDP's
    ``Suppress`` with tau = inf.  It is the canonical mechanism that is
    *vulnerable* to exclusion attacks: excluding a record reveals it was
    sensitive.
    """

    def mechanism(db: tuple) -> dict[Hashable, float]:
        released = tuple(sorted((r for r in db if policy.is_non_sensitive(r)), key=repr))
        return {released: 1.0}

    return mechanism


def non_truman_mechanism(policy: Policy) -> DistributionFn:
    """Non-Truman access control: answer fully or reject.

    Releases the full (sorted) database when no record is sensitive and
    the distinguished token ``"REJECT"`` otherwise.  The rejection itself
    leaks sensitivity — the other face of the exclusion attack.
    """

    def mechanism(db: tuple) -> dict[Hashable, float]:
        if any(policy.is_sensitive(r) for r in db):
            return {"REJECT": 1.0}
        return {tuple(sorted(db, key=repr)): 1.0}

    return mechanism
