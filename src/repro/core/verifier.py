"""Exact privacy verification for finite mechanisms.

For mechanisms with finitely many outputs whose distribution can be
enumerated (``output_distribution(db) -> {output: probability}``), the
OSDP inequality (Definition 3.3) can be checked *exactly* by exhausting
one-sided neighbors over a small record universe.  This turns the
paper's privacy theorems into executable assertions: the test suite uses
the verifier to confirm Theorem 4.1 (OsdpRR is OSDP) and to exhibit
counter-examples (Suppress with large tau is *not* OSDP, Section 3.4).

Pointwise ratios over singleton outputs suffice for discrete mechanisms:
``Pr[M(D) in O] <= e^eps Pr[M(D') in O]`` for all O iff the inequality
holds for every singleton output (probabilities are countably additive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Sequence

import math

from repro.core.neighbors import dp_neighbors, one_sided_neighbors
from repro.core.policy import Policy

Distribution = Mapping[Hashable, float]
DistributionFn = Callable[[tuple], Distribution]


@dataclass(frozen=True)
class Violation:
    """A witnessed violation of the privacy inequality."""

    db: tuple
    neighbor: tuple
    output: Hashable
    ratio: float

    def __str__(self) -> str:
        return (
            f"Pr[M({self.db}) = {self.output}] / "
            f"Pr[M({self.neighbor}) = {self.output}] = {self.ratio:.4g}"
        )


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of an exhaustive privacy check."""

    satisfied: bool
    max_ratio: float
    violation: Violation | None = None

    @property
    def tight_epsilon(self) -> float:
        """The smallest epsilon for which the definition would hold."""
        return math.log(self.max_ratio) if self.max_ratio > 0 else 0.0


def _check_distribution(dist: Distribution) -> None:
    total = sum(dist.values())
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise ValueError(f"output distribution sums to {total}, expected 1")
    if any(p < -1e-15 for p in dist.values()):
        raise ValueError("output distribution has negative probabilities")


def max_likelihood_ratio(dist_a: Distribution, dist_b: Distribution) -> float:
    """sup over outputs o of Pr_a[o] / Pr_b[o] (inf when unbounded)."""
    worst = 0.0
    for output, p_a in dist_a.items():
        if p_a <= 0:
            continue
        p_b = dist_b.get(output, 0.0)
        if p_b <= 0:
            return math.inf
        worst = max(worst, p_a / p_b)
    return worst


def _verify_over_pairs(
    mechanism: DistributionFn,
    pairs: Iterable[tuple[tuple, tuple]],
    epsilon: float,
) -> VerificationResult:
    bound = math.exp(epsilon)
    max_ratio = 0.0
    worst: Violation | None = None
    cache: dict[tuple, Distribution] = {}

    def dist_of(db: tuple) -> Distribution:
        if db not in cache:
            d = mechanism(db)
            _check_distribution(d)
            cache[db] = d
        return cache[db]

    for db, neighbor in pairs:
        dist_a = dist_of(db)
        dist_b = dist_of(neighbor)
        for output, p_a in dist_a.items():
            if p_a <= 0:
                continue
            p_b = dist_b.get(output, 0.0)
            ratio = math.inf if p_b <= 0 else p_a / p_b
            if ratio > max_ratio:
                max_ratio = ratio
                if ratio > bound * (1 + 1e-9):
                    worst = Violation(db=db, neighbor=neighbor, output=output, ratio=ratio)
    return VerificationResult(
        satisfied=worst is None, max_ratio=max_ratio, violation=worst
    )


def verify_osdp(
    mechanism: DistributionFn,
    databases: Sequence[Sequence],
    policy: Policy,
    epsilon: float,
    universe: Sequence,
) -> VerificationResult:
    """Exhaustively check (P, epsilon)-OSDP over the given databases.

    For each database, every one-sided P-neighbor over ``universe`` is
    enumerated and the pointwise likelihood-ratio bound is checked.
    Intended for small universes (the complexity is
    ``O(|databases| * |db| * |universe| * |outputs|)``).
    """
    pairs = (
        (tuple(db), neighbor)
        for db in databases
        for neighbor in one_sided_neighbors(tuple(db), policy, universe)
    )
    return _verify_over_pairs(mechanism, pairs, epsilon)


def verify_dp(
    mechanism: DistributionFn,
    databases: Sequence[Sequence],
    epsilon: float,
    universe: Sequence,
) -> VerificationResult:
    """Exhaustively check bounded epsilon-DP over the given databases."""
    pairs = (
        (tuple(db), neighbor)
        for db in databases
        for neighbor in dp_neighbors(tuple(db), universe)
    )
    return _verify_over_pairs(mechanism, pairs, epsilon)
