"""Core one-sided differential privacy framework.

This subpackage implements the paper's formal machinery (Sections 2, 3
and the appendix):

* :mod:`repro.core.policy` — policy functions (Definition 3.1) and the
  relaxation partial order / minimum relaxation (Definitions 3.5, 3.6);
* :mod:`repro.core.policy_language` — the declarative policy spec
  language (§7) and the serializable wire format
  (``policy_to_spec``/``policy_from_spec``) the shard-worker runtime
  ships policies across process boundaries with;
* :mod:`repro.core.neighbors` — bounded-DP, one-sided and extended
  one-sided neighbor relations (Definitions 2.1, 3.2, 10.1);
* :mod:`repro.core.guarantees` — privacy guarantee objects and the
  conversion lemmas (Lemmas 3.1/3.2, Theorems 3.2, 10.1);
* :mod:`repro.core.accountant` — budget accounting with sequential
  composition over minimum relaxations (Theorem 3.3) and parallel
  composition for extended OSDP (Theorem 10.2);
* :mod:`repro.core.verifier` — exact OSDP/DP verification for finite
  mechanisms, used throughout the tests to validate Theorems 4.1/5.2;
* :mod:`repro.core.exclusion` — the exclusion-attack formalism
  (Definition 3.4) with product priors and posterior odds ratios
  (Theorems 3.1, 3.4).
"""

from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.core.exclusion import (
    ExclusionAttackResult,
    ProductPrior,
    posterior_odds_ratio,
    worst_case_odds_inflation,
)
from repro.core.guarantees import (
    DPGuarantee,
    EOSDPGuarantee,
    OSDPGuarantee,
    PDPGuarantee,
    dp_to_osdp,
    eosdp_to_osdp,
    osdp_all_sensitive_to_dp,
    relax_guarantee,
    sequential_composition,
)
from repro.core.neighbors import (
    dp_neighbors,
    extended_one_sided_neighbors,
    is_dp_neighbor,
    is_extended_one_sided_neighbor,
    is_one_sided_neighbor,
    one_sided_neighbors,
)
from repro.core.policy import (
    AllNonSensitivePolicy,
    AllSensitivePolicy,
    AttributePolicy,
    LambdaPolicy,
    OptInPolicy,
    Policy,
    SpecUnsupported,
    is_relaxation_of,
    minimum_relaxation,
)
from repro.core.policy_language import (
    PolicySpecError,
    compile_policy,
    policy_from_spec,
    policy_spec_fingerprint,
    policy_to_spec,
    register_policy_kind,
)
from repro.core.verifier import (
    max_likelihood_ratio,
    verify_dp,
    verify_osdp,
)

__all__ = [
    "AllNonSensitivePolicy",
    "AllSensitivePolicy",
    "AttributePolicy",
    "BudgetExceededError",
    "DPGuarantee",
    "EOSDPGuarantee",
    "ExclusionAttackResult",
    "LambdaPolicy",
    "OSDPGuarantee",
    "OptInPolicy",
    "PDPGuarantee",
    "Policy",
    "PolicySpecError",
    "PrivacyAccountant",
    "ProductPrior",
    "SpecUnsupported",
    "compile_policy",
    "dp_neighbors",
    "dp_to_osdp",
    "eosdp_to_osdp",
    "extended_one_sided_neighbors",
    "is_dp_neighbor",
    "is_extended_one_sided_neighbor",
    "is_one_sided_neighbor",
    "is_relaxation_of",
    "max_likelihood_ratio",
    "minimum_relaxation",
    "one_sided_neighbors",
    "osdp_all_sensitive_to_dp",
    "policy_from_spec",
    "policy_spec_fingerprint",
    "policy_to_spec",
    "posterior_odds_ratio",
    "register_policy_kind",
    "relax_guarantee",
    "sequential_composition",
    "verify_dp",
    "verify_osdp",
    "worst_case_odds_inflation",
]
