"""Neighbor relations: bounded DP, one-sided, and extended one-sided.

Databases are represented as tuples of records (order is irrelevant for
the privacy definitions; tuples keep the enumeration code simple and
hashable).  These relations are primarily consumed by
:mod:`repro.core.verifier`, which exhaustively checks the OSDP inequality
for finite mechanisms over small universes — the executable counterpart
of the paper's Theorems 4.1 and 5.2.

* Definition 2.1 — DP neighbors: replace the value of one record.
* Definition 3.2 — one-sided ``P``-neighbors: replace one *sensitive*
  record with any other record.  The relation is asymmetric: a database
  with no sensitive records has no one-sided neighbors.
* Definition 10.1 — extended one-sided neighbors: remove one sensitive
  record, or add any record distinct from some sensitive record.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.policy import Policy

Database = tuple


def _as_db(records: Iterable) -> Database:
    return tuple(records)


def dp_neighbors(db: Sequence, universe: Sequence) -> Iterator[Database]:
    """All bounded-DP neighbors of ``db`` over a finite record universe."""
    db = _as_db(db)
    for i, r in enumerate(db):
        for r_new in universe:
            if r_new != r:
                yield db[:i] + (r_new,) + db[i + 1 :]


def one_sided_neighbors(
    db: Sequence, policy: Policy, universe: Sequence
) -> Iterator[Database]:
    """All one-sided ``P``-neighbors of ``db`` (Definition 3.2).

    Each neighbor replaces one sensitive record of ``db`` with an
    arbitrary *different* record from the universe.
    """
    db = _as_db(db)
    for i, r in enumerate(db):
        if not policy.is_sensitive(r):
            continue
        for r_new in universe:
            if r_new != r:
                yield db[:i] + (r_new,) + db[i + 1 :]


def extended_one_sided_neighbors(
    db: Sequence, policy: Policy, universe: Sequence
) -> Iterator[Database]:
    """All extended one-sided neighbors of ``db`` (Definition 10.1).

    ``D' = D - {r}`` for a sensitive ``r in D``, or ``D' = D + {r'}``
    where ``r'`` differs from some sensitive record of ``D``.
    """
    db = _as_db(db)
    sensitive_positions = [i for i, r in enumerate(db) if policy.is_sensitive(r)]
    for i in sensitive_positions:
        yield db[:i] + db[i + 1 :]
    if sensitive_positions:
        sensitive_values = {db[i] for i in sensitive_positions}
        for r_new in universe:
            # r' must differ from at least one sensitive record r in D.
            if any(r_new != s for s in sensitive_values):
                yield db + (r_new,)


def is_dp_neighbor(db_a: Sequence, db_b: Sequence) -> bool:
    """True when the two databases differ in the value of one record.

    Multiset semantics: equal sizes and symmetric difference of exactly
    one record on each side.
    """
    a, b = _as_db(db_a), _as_db(db_b)
    if len(a) != len(b):
        return False
    return _multiset_replacement_diff(a, b) is not None


def is_one_sided_neighbor(db_a: Sequence, db_b: Sequence, policy: Policy) -> bool:
    """True when ``db_b`` is a one-sided P-neighbor of ``db_a``.

    Asymmetric: the record *removed* from ``db_a`` must be sensitive.
    """
    a, b = _as_db(db_a), _as_db(db_b)
    if len(a) != len(b):
        return False
    diff = _multiset_replacement_diff(a, b)
    if diff is None:
        return False
    removed, _added = diff
    return policy.is_sensitive(removed)


def is_extended_one_sided_neighbor(
    db_a: Sequence, db_b: Sequence, policy: Policy
) -> bool:
    """True when ``db_b`` is an extended one-sided neighbor of ``db_a``."""
    a, b = _as_db(db_a), _as_db(db_b)
    counts_a = _multiset_counts(a)
    counts_b = _multiset_counts(b)
    if len(b) == len(a) - 1:
        removed = _single_extra(counts_a, counts_b)
        return removed is not None and policy.is_sensitive(removed)
    if len(b) == len(a) + 1:
        added = _single_extra(counts_b, counts_a)
        if added is None:
            return False
        return any(
            policy.is_sensitive(r) and r != added for r in a
        )
    return False


def _multiset_counts(db: Database) -> dict:
    counts: dict = {}
    for r in db:
        counts[r] = counts.get(r, 0) + 1
    return counts


def _single_extra(bigger: dict, smaller: dict) -> object | None:
    """The single record in ``bigger`` beyond ``smaller``, or None."""
    extra = None
    for r, c in bigger.items():
        diff = c - smaller.get(r, 0)
        if diff < 0:
            return None
        if diff == 1:
            if extra is not None:
                return None
            extra = r
        elif diff > 1:
            return None
    for r, c in smaller.items():
        if c > bigger.get(r, 0):
            return None
    return extra


def _multiset_replacement_diff(a: Database, b: Database) -> tuple | None:
    """If ``b = a - {r} + {r'}`` with r != r', return (r, r'), else None."""
    counts_a = _multiset_counts(a)
    counts_b = _multiset_counts(b)
    surplus_a = []  # records a has more of than b
    surplus_b = []
    for r in set(counts_a) | set(counts_b):
        diff = counts_a.get(r, 0) - counts_b.get(r, 0)
        if diff > 0:
            surplus_a.extend([r] * diff)
        elif diff < 0:
            surplus_b.extend([r] * (-diff))
        if len(surplus_a) > 1 or len(surplus_b) > 1:
            return None
    if len(surplus_a) == 1 and len(surplus_b) == 1:
        return surplus_a[0], surplus_b[0]
    return None
