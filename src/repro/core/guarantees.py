"""Privacy guarantee objects and the paper's conversion lemmas.

Guarantees are small immutable value objects that mechanisms expose via a
``guarantee`` property and that the accountant composes:

* :class:`DPGuarantee` — epsilon-differential privacy (Definition 2.2);
* :class:`OSDPGuarantee` — (P, epsilon)-one-sided DP (Definition 3.3);
* :class:`EOSDPGuarantee` — extended OSDP (Definition 10.2);
* :class:`PDPGuarantee` — personalized DP (Section 3.4 comparison).

The module-level functions implement the statements proved in the paper:

========================  =======================================
``dp_to_osdp``            Lemma 3.1 (DP implies OSDP for any P)
``osdp_all_sensitive_to_dp``  Lemma 3.2 (P_all-OSDP implies DP)
``relax_guarantee``       Theorem 3.2 (privacy relaxation)
``sequential_composition``  Theorem 3.3 (composition over P_mr)
``eosdp_to_osdp``         Theorem 10.1 (eOSDP implies 2*eps OSDP)
``parallel_composition``  Theorem 10.2 (eOSDP parallel composition)
========================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.policy import AllSensitivePolicy, Policy, minimum_relaxation


def _validate_epsilon(epsilon: float) -> None:
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")


@dataclass(frozen=True)
class DPGuarantee:
    """epsilon-differential privacy under the bounded model."""

    epsilon: float

    def __post_init__(self) -> None:
        _validate_epsilon(self.epsilon)

    def __str__(self) -> str:
        return f"{self.epsilon}-DP"


@dataclass(frozen=True)
class OSDPGuarantee:
    """(P, epsilon)-one-sided differential privacy (Definition 3.3)."""

    policy: Policy
    epsilon: float

    def __post_init__(self) -> None:
        _validate_epsilon(self.epsilon)

    def __str__(self) -> str:
        return f"({self.policy.name}, {self.epsilon})-OSDP"


@dataclass(frozen=True)
class EOSDPGuarantee:
    """(P, epsilon)-extended one-sided DP (Definition 10.2)."""

    policy: Policy
    epsilon: float

    def __post_init__(self) -> None:
        _validate_epsilon(self.epsilon)

    def __str__(self) -> str:
        return f"({self.policy.name}, {self.epsilon})-eOSDP"


@dataclass(frozen=True)
class PDPGuarantee:
    """Personalized differential privacy (Jorgensen et al.), Section 3.4.

    ``epsilon_of`` maps each record to its personal privacy parameter;
    ``float('inf')`` models non-sensitive records.  PDP guarantees do
    *not* imply freedom from exclusion attacks — that is the paper's key
    criticism (Theorem 3.4) — so this class intentionally provides no
    conversion to :class:`OSDPGuarantee`.
    """

    epsilon_of: Callable[[object], float] = field(repr=False)
    description: str = "PDP"

    def __str__(self) -> str:
        return self.description


def dp_to_osdp(guarantee: DPGuarantee, policy: Policy) -> OSDPGuarantee:
    """Lemma 3.1: an epsilon-DP mechanism is (P, epsilon)-OSDP for any P."""
    return OSDPGuarantee(policy=policy, epsilon=guarantee.epsilon)


def osdp_all_sensitive_to_dp(guarantee: OSDPGuarantee) -> DPGuarantee:
    """Lemma 3.2: (P_all, epsilon)-OSDP implies epsilon-DP.

    Only valid when the guarantee's policy is the all-sensitive policy;
    the caller asserts that by construction (policies are black boxes, so
    we check the type of the canonical ``AllSensitivePolicy``).
    """
    if not isinstance(guarantee.policy, AllSensitivePolicy):
        raise ValueError(
            "Lemma 3.2 applies only to guarantees under the all-sensitive policy"
        )
    return DPGuarantee(epsilon=guarantee.epsilon)


def relax_guarantee(guarantee: OSDPGuarantee, weaker_policy: Policy) -> OSDPGuarantee:
    """Theorem 3.2: a (P2, eps)-OSDP mechanism is (P1, eps)-OSDP for P1 <=_p P2.

    The caller is responsible for ``weaker_policy`` actually being a
    relaxation (policies are semantic objects; use
    :func:`repro.core.policy.is_relaxation_of` to check over a universe).
    """
    return OSDPGuarantee(policy=weaker_policy, epsilon=guarantee.epsilon)


def sequential_composition(guarantees: Sequence[OSDPGuarantee]) -> OSDPGuarantee:
    """Theorem 3.3: compose (P_i, eps_i)-OSDP into (P_mr, sum eps_i)-OSDP."""
    if not guarantees:
        raise ValueError("cannot compose an empty sequence of guarantees")
    policy = minimum_relaxation(*[g.policy for g in guarantees])
    return OSDPGuarantee(policy=policy, epsilon=sum(g.epsilon for g in guarantees))


def eosdp_to_osdp(guarantee: EOSDPGuarantee) -> OSDPGuarantee:
    """Theorem 10.1: (P, eps)-eOSDP implies (P, 2*eps)-OSDP."""
    return OSDPGuarantee(policy=guarantee.policy, epsilon=2.0 * guarantee.epsilon)


def parallel_composition(guarantees: Sequence[EOSDPGuarantee]) -> EOSDPGuarantee:
    """Theorem 10.2: eOSDP mechanisms on disjoint partitions compose to max eps.

    Valid only when each mechanism consumes a distinct cell of a
    partition of the database; the accountant enforces the bookkeeping,
    this function just performs the arithmetic.
    """
    if not guarantees:
        raise ValueError("cannot compose an empty sequence of guarantees")
    policy = minimum_relaxation(*[g.policy for g in guarantees])
    return EOSDPGuarantee(
        policy=policy, epsilon=max(g.epsilon for g in guarantees)
    )
