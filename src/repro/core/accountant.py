"""Privacy budget accounting for OSDP analyses.

The accountant tracks a total epsilon budget and a ledger of analyses
run against the data, composing their guarantees per Theorem 3.3
(sequential composition over the minimum relaxation of the policies
involved).  Mechanisms in :mod:`repro.mechanisms` accept an optional
accountant and charge it before releasing output, so a multi-step
analysis (e.g. DAWAz's zero-detection + DAWA stages) is budget-audited
end to end.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.guarantees import OSDPGuarantee, sequential_composition
from repro.core.policy import Policy


class BudgetExceededError(RuntimeError):
    """Raised when a charge would exceed the accountant's total budget."""


@dataclass(frozen=True)
class LedgerEntry:
    """One composed analysis: its policy, epsilon spent, and a label."""

    policy: Policy
    epsilon: float
    label: str


@dataclass
class PrivacyAccountant:
    """Sequential-composition budget tracker for OSDP mechanisms.

    Parameters
    ----------
    total_epsilon:
        The overall privacy budget.  Charges beyond this raise
        :class:`BudgetExceededError` and leave the ledger unchanged.

    Examples
    --------
    >>> from repro.core.policy import AllSensitivePolicy
    >>> acct = PrivacyAccountant(total_epsilon=1.0)
    >>> acct.charge(AllSensitivePolicy(), 0.4, label="histogram")
    >>> round(acct.remaining, 10)
    0.6
    """

    total_epsilon: float
    _ledger: list[LedgerEntry] = field(default_factory=list, repr=False)
    # Charging is check-then-append; concurrent analysts (the RPC tier
    # serves releases under a shared lock) must not be able to spend
    # the same remaining budget twice, so the pair is atomic.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise ValueError("total_epsilon must be positive")

    @property
    def spent(self) -> float:
        return sum(entry.epsilon for entry in self._ledger)

    @property
    def remaining(self) -> float:
        return self.total_epsilon - self.spent

    @property
    def ledger(self) -> tuple[LedgerEntry, ...]:
        return tuple(self._ledger)

    def charge(self, policy: Policy, epsilon: float, label: str = "") -> None:
        """Record an (policy, epsilon)-OSDP analysis against the budget.

        Atomic: the affordability check and the ledger append happen
        under one lock, so concurrent charges compose sequentially —
        two analysts can never both spend the last remaining epsilon.
        """
        if epsilon <= 0:
            raise ValueError("epsilon charge must be positive")
        with self._lock:
            # Small tolerance so that e.g. 0.1 + 0.9 == 1.0 charges
            # succeed despite float representation error.
            if self.spent + epsilon > self.total_epsilon * (1 + 1e-12) + 1e-12:
                raise BudgetExceededError(
                    f"charge of {epsilon} exceeds remaining budget "
                    f"{self.remaining:.6g} (total {self.total_epsilon})"
                )
            self._ledger.append(
                LedgerEntry(policy=policy, epsilon=epsilon, label=label)
            )

    def composed_guarantee(self) -> OSDPGuarantee:
        """The overall guarantee per Theorem 3.3: (P_mr, sum eps_i)-OSDP."""
        if not self._ledger:
            raise ValueError("no analyses have been charged yet")
        return sequential_composition(
            [OSDPGuarantee(policy=e.policy, epsilon=e.epsilon) for e in self._ledger]
        )

    def summary(self) -> str:
        """Human-readable ledger, one line per charge."""
        lines = [f"budget: {self.total_epsilon}  spent: {self.spent:.6g}  "
                 f"remaining: {self.remaining:.6g}"]
        for i, entry in enumerate(self._ledger, start=1):
            label = entry.label or "(unlabelled)"
            lines.append(
                f"  {i}. {label}: epsilon={entry.epsilon:.6g} "
                f"policy={entry.policy.name}"
            )
        return "\n".join(lines)
