"""Privacy budget accounting for OSDP analyses.

The accountant tracks a total epsilon budget and a ledger of analyses
run against the data, composing their guarantees per Theorem 3.3
(sequential composition over the minimum relaxation of the policies
involved).  Mechanisms in :mod:`repro.mechanisms` accept an optional
accountant and charge it before releasing output, so a multi-step
analysis (e.g. DAWAz's zero-detection + DAWA stages) is budget-audited
end to end.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.guarantees import OSDPGuarantee, sequential_composition
from repro.core.policy import Policy


class BudgetExceededError(RuntimeError):
    """Raised when a charge would exceed the accountant's total budget."""


class AnalystQuotaExceededError(BudgetExceededError):
    """A charge fit the global budget but overran its analyst's quota."""


@dataclass(frozen=True)
class LedgerEntry:
    """One composed analysis: its policy, epsilon spent, and a label.

    ``analyst`` is the credential the charge arrived under (the wire
    header's ``analyst`` field); empty for anonymous/curator charges.
    """

    policy: Policy
    epsilon: float
    label: str
    analyst: str = ""


@dataclass
class PrivacyAccountant:
    """Sequential-composition budget tracker for OSDP mechanisms.

    Parameters
    ----------
    total_epsilon:
        The overall privacy budget.  Charges beyond this raise
        :class:`BudgetExceededError` and leave the ledger unchanged.
    quotas:
        Optional per-analyst sub-budgets (``{analyst: epsilon}``).  A
        charge arriving under a quota'd analyst must fit *both* the
        global remaining budget and that analyst's remaining quota
        (checked atomically under the same lock); overrunning the
        quota raises :class:`AnalystQuotaExceededError`.  Analysts
        without a declared quota draw from the global budget only.
        Quotas may oversubscribe the total — they are caps, not
        reservations.

    Examples
    --------
    >>> from repro.core.policy import AllSensitivePolicy
    >>> acct = PrivacyAccountant(total_epsilon=1.0)
    >>> acct.charge(AllSensitivePolicy(), 0.4, label="histogram")
    >>> round(acct.remaining, 10)
    0.6
    """

    total_epsilon: float
    quotas: "Mapping[str, float] | None" = None
    _ledger: list[LedgerEntry] = field(default_factory=list, repr=False)
    # Charging is check-then-append; concurrent analysts (the RPC tier
    # serves releases under a shared lock) must not be able to spend
    # the same remaining budget twice, so the pair is atomic.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise ValueError("total_epsilon must be positive")
        quotas = {
            str(name): float(eps) for name, eps in (self.quotas or {}).items()
        }
        for name, eps in quotas.items():
            if not name:
                raise ValueError("quota analyst names must be non-empty")
            if eps <= 0:
                raise ValueError(
                    f"quota for analyst {name!r} must be positive"
                )
        self.quotas = quotas

    @property
    def spent(self) -> float:
        return sum(entry.epsilon for entry in self._ledger)

    @property
    def remaining(self) -> float:
        return self.total_epsilon - self.spent

    @property
    def ledger(self) -> tuple[LedgerEntry, ...]:
        return tuple(self._ledger)

    def spent_by(self, analyst: str) -> float:
        """Total epsilon charged under one analyst credential."""
        return sum(
            entry.epsilon
            for entry in self._ledger
            if entry.analyst == analyst
        )

    def quota_remaining(self, analyst: str) -> float | None:
        """The analyst's remaining quota, or None when unquota'd."""
        quota = self.quotas.get(analyst)
        if quota is None:
            return None
        return quota - self.spent_by(analyst)

    def charge(
        self,
        policy: Policy,
        epsilon: float,
        label: str = "",
        analyst: str = "",
    ) -> None:
        """Record an (policy, epsilon)-OSDP analysis against the budget.

        Atomic: the affordability check and the ledger append happen
        under one lock, so concurrent charges compose sequentially —
        two analysts can never both spend the last remaining epsilon,
        and a quota'd analyst can never overdraw the sub-budget either.
        """
        if epsilon <= 0:
            raise ValueError("epsilon charge must be positive")
        with self._lock:
            self._check_charge(epsilon, analyst)
            self._append_entry(
                LedgerEntry(
                    policy=policy,
                    epsilon=epsilon,
                    label=label,
                    analyst=str(analyst),
                )
            )

    # The check/append split is the durable-accountant seam: a
    # DurableAccountant interposes its fsync'd journal append between
    # the two, under this same lock (see repro.service.budget).
    def _check_charge(self, epsilon: float, analyst: str = "") -> None:
        """Affordability check (global + quota); caller holds the lock."""
        # Small tolerance so that e.g. 0.1 + 0.9 == 1.0 charges
        # succeed despite float representation error.
        if self.spent + epsilon > self.total_epsilon * (1 + 1e-12) + 1e-12:
            raise BudgetExceededError(
                f"charge of {epsilon} exceeds remaining budget "
                f"{self.remaining:.6g} (total {self.total_epsilon})"
            )
        quota = self.quotas.get(str(analyst)) if analyst else None
        if quota is not None:
            spent = self.spent_by(str(analyst))
            if spent + epsilon > quota * (1 + 1e-12) + 1e-12:
                raise AnalystQuotaExceededError(
                    f"charge of {epsilon} exceeds analyst {analyst!r}'s "
                    f"remaining quota {quota - spent:.6g} (quota {quota})"
                )

    def _append_entry(self, entry: LedgerEntry) -> None:
        """Unchecked ledger append; caller holds the lock.

        Also the recovery installer: replayed history is history, so a
        recovered ledger may legitimately stand above ``total_epsilon``
        (further charges are then refused by :meth:`_check_charge`).
        """
        self._ledger.append(entry)

    def for_analyst(self, analyst: str | None) -> "PrivacyAccountant | AnalystAccountant":
        """This accountant with charges bound to ``analyst``.

        A falsy analyst returns the accountant itself (anonymous
        charges); otherwise a thin bound proxy whose ``charge`` stamps
        the credential, so mechanisms keep their accountant-agnostic
        ``charge(policy, eps, label=...)`` call shape.
        """
        if not analyst:
            return self
        return AnalystAccountant(self, str(analyst))

    def view(self) -> dict:
        """The full ledger as a wire-safe document (the ``budget`` op).

        Per-entry policy *names* only — specs may not exist for opaque
        policies, and the view is an operator surface, not a recovery
        format (that is the durable journal's job).
        """
        with self._lock:
            entries = [
                {
                    "label": entry.label,
                    "epsilon": float(entry.epsilon),
                    "policy": entry.policy.name,
                    "analyst": entry.analyst,
                }
                for entry in self._ledger
            ]
            quotas = {
                name: {
                    "quota": float(quota),
                    "spent": float(self.spent_by(name)),
                    "remaining": float(quota - self.spent_by(name)),
                }
                for name, quota in self.quotas.items()
            }
            return {
                "total": float(self.total_epsilon),
                "spent": float(self.spent),
                "remaining": float(self.remaining),
                "entries": entries,
                "quotas": quotas,
            }

    def composed_guarantee(self) -> OSDPGuarantee:
        """The overall guarantee per Theorem 3.3: (P_mr, sum eps_i)-OSDP."""
        if not self._ledger:
            raise ValueError("no analyses have been charged yet")
        return sequential_composition(
            [OSDPGuarantee(policy=e.policy, epsilon=e.epsilon) for e in self._ledger]
        )

    def summary(self) -> str:
        """Human-readable ledger, one line per charge."""
        lines = [f"budget: {self.total_epsilon}  spent: {self.spent:.6g}  "
                 f"remaining: {self.remaining:.6g}"]
        for i, entry in enumerate(self._ledger, start=1):
            label = entry.label or "(unlabelled)"
            analyst = f" analyst={entry.analyst}" if entry.analyst else ""
            lines.append(
                f"  {i}. {label}: epsilon={entry.epsilon:.6g} "
                f"policy={entry.policy.name}{analyst}"
            )
        return "\n".join(lines)


class AnalystAccountant:
    """An accountant with every charge bound to one analyst credential.

    Produced by ``for_analyst``; mechanisms call ``charge(policy, eps,
    label=...)`` on it exactly as they would on the underlying
    accountant — the credential rides along invisibly, and the quota
    check happens atomically inside the underlying ``charge``.
    """

    __slots__ = ("_accountant", "analyst")

    def __init__(self, accountant, analyst: str):
        if not analyst:
            raise ValueError("analyst must be non-empty")
        self._accountant = accountant
        self.analyst = str(analyst)

    def charge(self, policy: Policy, epsilon: float, label: str = "") -> None:
        self._accountant.charge(
            policy, epsilon, label=label, analyst=self.analyst
        )

    @property
    def total_epsilon(self) -> float:
        return self._accountant.total_epsilon

    @property
    def spent(self) -> float:
        return self._accountant.spent

    @property
    def remaining(self) -> float:
        """What this analyst can still spend: the global remainder,
        further capped by the analyst's quota when one is declared."""
        remaining = self._accountant.remaining
        quota_left = self._accountant.quota_remaining(self.analyst)
        if quota_left is None:
            return remaining
        return min(remaining, quota_left)
