"""Command-line interface for the reproduction experiments.

Each subcommand regenerates one of the paper's tables/figures at a
configurable scale and prints the same rows the paper reports;
``--output`` additionally writes the raw results as JSON.

Usage examples::

    python -m repro.cli table1
    python -m repro.cli fig1 --users 400 --days 50 --folds 5
    python -m repro.cli ngrams --n 4 --epsilon 1.0 0.01
    python -m repro.cli dpbench --datasets adult patent --trials 3

``serve`` is different in kind: it starts the release service — a
:class:`repro.service.rpc.RpcServer` over a (sharded) database — and
blocks, so analysts can connect with
``repro.api.OsdpClient.connect(host, port)``::

    python -m repro.cli serve --port 7777 --shards 4 --workers --budget 10
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.data.tippers import TippersConfig
from repro.evaluation.runner import format_table


def _add_tippers_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=400, help="synthetic users")
    parser.add_argument("--days", type=int, default=50, help="trace length in days")
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument(
        "--policies",
        type=float,
        nargs="+",
        default=[99, 90, 75, 50, 25, 10, 1],
        help="non-sensitive percentages (P_rho)",
    )
    parser.add_argument(
        "--epsilon", type=float, nargs="+", default=[1.0, 0.01],
        help="privacy budgets",
    )


def _tippers_config(args: argparse.Namespace) -> TippersConfig:
    return TippersConfig(n_users=args.users, n_days=args.days, seed=args.seed)


def _maybe_save(results, args: argparse.Namespace) -> None:
    if getattr(args, "output", None):
        from repro.evaluation.reporting import save_results

        path = save_results(results, args.output)
        print(f"\nresults written to {path}")


def cmd_table1(args: argparse.Namespace) -> None:
    from repro.evaluation.experiments.table1 import (
        expected_release_percentages,
        monte_carlo_release_percentages,
    )

    analytic = expected_release_percentages(tuple(args.epsilon))
    measured = monte_carlo_release_percentages(
        tuple(args.epsilon), n_records=args.records, seed=args.seed
    )
    rows = [[eps, analytic[eps], measured[eps]] for eps in args.epsilon]
    print(format_table(["epsilon", "analytic %", "measured %"], rows))
    _maybe_save({"analytic": analytic, "measured": measured}, args)


def cmd_fig1(args: argparse.Namespace) -> None:
    from repro.evaluation.experiments.fig1_classification import (
        Fig1Config,
        run_fig1,
    )

    config = Fig1Config(
        tippers=_tippers_config(args),
        policies=tuple(args.policies),
        epsilons=tuple(args.epsilon),
        cv_folds=args.folds,
    )
    out = run_fig1(config)
    for eps, by_policy in out["errors"].items():
        print(f"\n1 - AUC at epsilon = {eps}")
        algos = ["all_ns", "osdp_rr", "objdp", "random"]
        rows = [
            [f"P{rho:g}"] + [by_policy[rho][a] for a in algos]
            for rho in args.policies
        ]
        print(format_table(["policy", *algos], rows))
    _maybe_save(out, args)


def cmd_ngrams(args: argparse.Namespace) -> None:
    from repro.evaluation.experiments.fig2_3_ngrams import (
        NGramConfig,
        run_ngram_experiment,
    )

    config = NGramConfig(
        tippers=_tippers_config(args),
        n=args.n,
        policies=tuple(args.policies),
        epsilons=tuple(args.epsilon),
        n_trials=args.trials,
    )
    out = run_ngram_experiment(config)
    print(f"{args.n}-gram domain {out['domain_size']:.3g}, "
          f"support {out['n_support']}, k* = {out['lm_kstar']}")
    for eps, by_policy in out["mre"].items():
        print(f"\nMRE at epsilon = {eps}")
        algos = ["all_ns", "osdp_rr", "lm_t1", "lm_tstar"]
        rows = [
            [f"P{rho:g}"] + [by_policy[rho][a] for a in algos]
            for rho in args.policies
        ]
        print(format_table(["policy", *algos], rows))
    _maybe_save(out, args)


def cmd_tippers_hist(args: argparse.Namespace) -> None:
    from repro.evaluation.experiments.fig4_5_tippers import (
        ALGORITHMS,
        TippersHistogramConfig,
        run_tippers_histogram,
    )

    config = TippersHistogramConfig(
        tippers=_tippers_config(args),
        policies=tuple(args.policies),
        epsilons=tuple(args.epsilon),
        n_trials=args.trials,
    )
    out = run_tippers_histogram(config)
    for eps, by_policy in out["mre"].items():
        print(f"\nMRE at epsilon = {eps}")
        rows = [
            [f"P{rho:g}"] + [by_policy[rho][a] for a in ALGORITHMS]
            for rho in args.policies
        ]
        print(format_table(["policy", *ALGORITHMS], rows))
    for metric in ("rel50", "rel95"):
        print(f"\n{metric} at epsilon = {args.epsilon[0]}")
        rows = [
            [f"P{rho:g}"] + [out[metric][rho][a] for a in ALGORITHMS]
            for rho in args.policies
        ]
        print(format_table(["policy", *ALGORITHMS], rows))
    _maybe_save(out, args)


def cmd_dpbench(args: argparse.Namespace) -> None:
    from repro.evaluation.experiments.fig6_10_dpbench import (
        DPBenchConfig,
        aggregate_regret,
        run_dpbench_sweep,
    )

    config = DPBenchConfig(
        datasets=tuple(args.datasets),
        ratios=tuple(args.ratios),
        epsilons=tuple(args.epsilon),
        n_trials=args.trials,
        seed=args.seed,
    )
    records = run_dpbench_sweep(config)
    for policy in ("close", "far"):
        by_rho = aggregate_regret(
            records, group_by="rho", where={"policy": policy}
        )
        algos = sorted(next(iter(by_rho.values())))
        rows = [
            [rho] + [by_rho[rho][a] for a in algos]
            for rho in sorted(by_rho, reverse=True)
        ]
        print(f"\naverage MRE-regret, policy = {policy}")
        print(format_table(["rho_x", *algos], rows))
    _maybe_save([dataclass_record.__dict__ for dataclass_record in records], args)


def serve_database(args: argparse.Namespace):
    """Build the table the ``serve`` subcommand exposes.

    ``--dataset synthetic`` is a generic demo table (age, city,
    opt_in); a DPBench name expands that benchmark's histogram into
    one record per count with a synthetic opt-in column, so the served
    data reproduces the paper's workloads bin for bin.  (The fleet
    launcher builds the same table per topology file — one generator,
    every serving shape.)
    """
    from repro.service.fleet import build_table

    return build_table(
        dataset=args.dataset,
        records=args.records,
        seed=args.seed,
        opt_in_rate=args.opt_in_rate,
    )


def _parse_quotas(pairs) -> dict[str, float] | None:
    """``["alice=2.5", ...]`` → ``{"alice": 2.5, ...}`` (None when empty)."""
    if not pairs:
        return None
    quotas: dict[str, float] = {}
    for pair in pairs:
        name, sep, eps = str(pair).partition("=")
        if not sep or not name:
            raise SystemExit(
                f"--quota wants NAME=EPS, got {pair!r}"
            )
        try:
            quotas[name] = float(eps)
        except ValueError:
            raise SystemExit(
                f"--quota epsilon must be a number, got {pair!r}"
            ) from None
    return quotas


def cmd_serve(args: argparse.Namespace) -> None:
    from repro.api.backends import ShardedBackend
    from repro.core.accountant import PrivacyAccountant
    from repro.service.rpc import RpcServer

    if args.shm and not args.workers:
        raise SystemExit(
            "--shm selects the worker pool's column transport; "
            "it requires --workers"
        )
    if args.wal_dir and args.workers:
        raise SystemExit(
            "--wal-dir is incompatible with --workers: WAL recovery "
            "replaces the whole database, which a pool of resident "
            "workers holding the old columns cannot follow"
        )
    if args.max_readers is not None and args.max_readers < 1:
        raise SystemExit("--max-readers must be at least 1")
    if args.max_inflight is not None and args.max_inflight < 1:
        raise SystemExit("--max-inflight must be at least 1")
    quotas = _parse_quotas(args.quota)
    if (quotas or args.budget_dir) and args.budget is None:
        raise SystemExit("--quota and --budget-dir require --budget")
    # `is not None`, not truthiness: `--budget 0` must not silently
    # start an unmetered server (the accountant rejects it loudly).
    accountant = None
    if args.budget is not None:
        if args.budget_dir:
            from repro.service.budget import DurableAccountant

            accountant = DurableAccountant(
                args.budget_dir,
                total_epsilon=args.budget,
                quotas=quotas,
            )
            report = accountant.recovery
            print(
                f"budget ledger: {args.budget_dir} (snapshot seq "
                f"{report['snapshot_seq']}, replayed {report['replayed']} "
                f"charge{'' if report['replayed'] == 1 else 's'}"
                + (
                    f", torn tail charged {report['torn_epsilon']:g}"
                    if report.get("torn_epsilon")
                    else ""
                )
                + f") — spent {report['spent']:g}, "
                f"remaining {report['remaining']:g}"
            )
        else:
            accountant = PrivacyAccountant(
                total_epsilon=args.budget, quotas=quotas
            )
    backend = ShardedBackend(
        serve_database(args),
        n_shards=args.shards,
        workers=args.workers,
        accountant=accountant,
        shm=args.shm if args.workers else None,
    )
    wal = None
    if args.wal_dir:
        from repro.service.wal import WriteAheadLog

        wal = WriteAheadLog(args.wal_dir)
        report = wal.recover(backend.server)
        print(
            f"wal: {args.wal_dir} (snapshot seq {report['snapshot_seq']}, "
            f"replayed {report['replayed']} entr"
            f"{'y' if report['replayed'] == 1 else 'ies'}"
            + (
                f", truncated {report['truncated_bytes']} torn byte(s)"
                if report["truncated_bytes"]
                else ""
            )
            + ")"
        )
    rpc = RpcServer(
        backend.server,
        host=args.host,
        port=args.port,
        max_readers=args.max_readers,
        read_timeout=args.read_timeout,
        wal=wal,
        ingest_queue=args.ingest_queue,
        ingest_flush_events=args.ingest_flush_events,
        admission_limit=args.max_inflight,
    )
    host, port = rpc.address
    store_lines = {
        "shm": "store: shared-memory segments (zero-copy worker attach, "
        "one physical copy)",
        "pickle": "store: heap (columns pickled to the workers once)",
        "heap": "store: heap (in-process engine, no worker pool)",
    }
    readers = (
        f"up to {args.max_readers} concurrent readers"
        if args.max_readers
        else "unbounded concurrent readers"
    )
    print(
        f"serving {len(backend.server.db)} records on {host}:{port} "
        f"({backend.server.n_shards} shards"
        f"{', worker pool' if args.workers else ''}"
        f"{f', budget {args.budget}' if args.budget else ''}) — "
        f"connect with repro.api.OsdpClient.connect({host!r}, {port})"
    )
    print(f"{store_lines[backend.store_mode]}; {readers}, "
          f"exclusive appends/expires")
    try:
        # SIGTERM (an orchestrator's normal stop) must run the same
        # graceful path as Ctrl-C: the default action kills the
        # process without finally blocks or GC finalizers, which would
        # leak the worker pool's shared-memory segments past process
        # death.
        import signal

        signal.signal(signal.SIGTERM, signal.default_int_handler)
    except ValueError:  # not on the main thread (embedded/tests)
        pass
    try:
        rpc.serve_forever()
    except KeyboardInterrupt:
        # Graceful drain: in-flight requests get their replies (up to
        # --drain-grace seconds), new ones are refused.  Running it
        # here — after serve_forever has unwound — rather than inside
        # the signal handler keeps shutdown() from deadlocking against
        # the interrupted serve loop.
        print("\ndraining (in-flight requests finish, new ones refused)")
        rpc.drain(grace=args.drain_grace)
        aborted = rpc.transport_stats["aborted_in_flight"]
        if aborted:
            print(f"drain grace expired with {aborted} request(s) aborted")
    finally:
        rpc.close()
        backend.close()
        if accountant is not None and hasattr(accountant, "close"):
            accountant.close()
        print("shutdown complete")


def cmd_stream(args: argparse.Namespace) -> None:
    """Stream synthetic building telemetry into a live release service.

    The operator-facing face of the streaming tier: connects to a
    ``serve`` endpoint, replays a deterministic ~300-sensor event
    stream through the group-commit buffer, and (optionally) runs the
    sliding-window retention and continual-release schedules while the
    stream flows.
    """
    from repro.api import OsdpClient
    from repro.data.telemetry import TelemetryConfig, telemetry_events
    from repro.queries.histogram import IntegerBinning

    import time as _time

    # Anchor the synthetic stream at the wall clock so the sliding
    # window (which the RetentionDriver measures against time.time())
    # sees current events, not epoch-0 ones that expire on arrival.
    config = TelemetryConfig(
        rate_hz=args.rate, seed=args.seed, start=_time.time()
    )
    release = None
    if args.release_period is not None:
        release = {
            "mechanism": "osdp_laplace_l1",
            "epsilon": args.epsilon,
            "binning": IntegerBinning("region", 0, config.n_regions, 1),
            # Opted-out sensors are the sensitive ones; opted-in events
            # are releasable as-is under OSDP.
            "policy": {"attr": "opt_in", "op": "==", "value": False},
            "period": args.release_period,
            "base_seed": args.seed,
        }
    with OsdpClient.connect(args.host, args.port) as client:
        stream = client.open_stream(
            window=args.window,
            release=release,
            max_events=args.batch,
            max_age=args.max_age,
        )
        for event in telemetry_events(args.events, config):
            stream.submit(event)
        report = stream.close()
        buffer = stream.buffer
        expired = (
            stream.retention.events_expired if stream.retention else 0
        )
        released = len(stream.continual.releases) if stream.continual else 0
        print(
            f"streamed {buffer.events_flushed} events in "
            f"{buffer.flushes} group commit(s); expired {expired}, "
            f"released {released} histogram(s) "
            f"(final pass: {report})"
        )


def cmd_cluster(args: argparse.Namespace) -> None:
    import time

    from repro.service.fleet import FleetSupervisor, FleetTopology

    topology = FleetTopology.from_file(args.topology)
    supervisor = FleetSupervisor(topology)
    try:
        # SIGTERM takes the same graceful path as Ctrl-C: drain every
        # child, reap, leave /dev/shm and the WAL dirs clean.
        import signal

        signal.signal(signal.SIGTERM, signal.default_int_handler)
    except ValueError:  # not on the main thread (embedded/tests)
        pass
    try:
        supervisor.start()
        for line in supervisor.events():
            print(line, flush=True)
        health = supervisor.health()
        n_ranges = len(topology.range_order)
        print(
            f"fleet up: {len(health)} endpoints across {n_ranges} shard "
            "range(s); wire supervisor.endpoints() into "
            "repro.api.ClusterBackend — SIGTERM or Ctrl-C drains",
            flush=True,
        )
        while True:
            time.sleep(args.health_interval)
            for line in supervisor.events():
                print(line, flush=True)
    except KeyboardInterrupt:
        print(
            "\ndraining fleet (children finish in-flight requests)",
            flush=True,
        )
        supervisor.drain(grace=args.drain_grace)
    finally:
        supervisor.close()
        print("fleet shutdown complete", flush=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of "
        "'One-sided Differential Privacy' (ICDE 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="OsdpRR release rates (Table 1)")
    p_table1.add_argument("--epsilon", type=float, nargs="+", default=[1.0, 0.5, 0.1])
    p_table1.add_argument("--records", type=int, default=20_000)
    p_table1.add_argument("--seed", type=int, default=0)
    p_table1.add_argument("--output", help="write JSON results here")
    p_table1.set_defaults(func=cmd_table1)

    p_fig1 = sub.add_parser("fig1", help="resident classification (Fig 1)")
    _add_tippers_args(p_fig1)
    p_fig1.add_argument("--folds", type=int, default=5)
    p_fig1.add_argument("--output")
    p_fig1.set_defaults(func=cmd_fig1)

    p_ngrams = sub.add_parser("ngrams", help="n-gram histograms (Figs 2-3)")
    _add_tippers_args(p_ngrams)
    p_ngrams.add_argument("--n", type=int, default=4, choices=(2, 3, 4, 5))
    p_ngrams.add_argument("--trials", type=int, default=5)
    p_ngrams.add_argument("--output")
    p_ngrams.set_defaults(func=cmd_ngrams)

    p_hist = sub.add_parser(
        "tippers-hist", help="TIPPERS 2-D histogram (Figs 4-5)"
    )
    _add_tippers_args(p_hist)
    p_hist.add_argument("--trials", type=int, default=5)
    p_hist.add_argument("--output")
    p_hist.set_defaults(func=cmd_tippers_hist)

    p_bench = sub.add_parser("dpbench", help="DPBench regret study (Figs 6-10)")
    p_bench.add_argument(
        "--datasets", nargs="+",
        default=["adult", "nettrace", "searchlogs", "patent"],
    )
    p_bench.add_argument(
        "--ratios", type=float, nargs="+",
        default=[0.99, 0.75, 0.5, 0.25, 0.01],
    )
    p_bench.add_argument("--epsilon", type=float, nargs="+", default=[1.0])
    p_bench.add_argument("--trials", type=int, default=3)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--output")
    p_bench.set_defaults(func=cmd_dpbench)

    p_serve = sub.add_parser(
        "serve", help="run the OSDP release service on a TCP socket"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7777, help="0 binds an ephemeral port"
    )
    p_serve.add_argument(
        "--dataset", default="synthetic",
        help="'synthetic', 'telemetry' (the repro.cli stream schema), "
        "or a DPBench name (adult, patent, ...)",
    )
    p_serve.add_argument("--records", type=int, default=100_000)
    p_serve.add_argument("--opt-in-rate", type=float, default=0.5)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--shards", type=int, default=None)
    p_serve.add_argument(
        "--workers", action="store_true",
        help="shard-resident worker processes with failover",
    )
    p_serve.add_argument(
        "--shm", action=argparse.BooleanOptionalAction, default=None,
        help="force (--shm) or forbid (--no-shm) shared-memory column "
        "segments for the worker pool; default auto-detects",
    )
    p_serve.add_argument(
        "--max-readers", type=int, default=None,
        help="bound on concurrently served read requests "
        "(releases/histograms); omit for unbounded",
    )
    p_serve.add_argument(
        "--budget", type=float, default=None,
        help="total epsilon; omit for an unmetered server",
    )
    p_serve.add_argument(
        "--budget-dir", default=None,
        help="durable budget ledger directory: every charge is "
        "fsync'd to an append-only journal before its release is "
        "returned, and a restarted server resumes from the recovered "
        "spent total (requires --budget)",
    )
    p_serve.add_argument(
        "--quota", action="append", default=None, metavar="NAME=EPS",
        help="per-analyst epsilon quota (repeatable, e.g. "
        "--quota alice=2.5); requests carrying that analyst "
        "credential are refused past it (requires --budget)",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=None,
        help="admission-control bound on concurrently executing "
        "requests: excess work is refused fast with a retryable "
        "overload error instead of queueing; omit for no gate",
    )
    p_serve.add_argument(
        "--read-timeout", type=float, default=None,
        help="per-connection socket read timeout in seconds: a peer "
        "stalling mid-frame loses its connection instead of pinning a "
        "handler thread; omit for no timeout",
    )
    p_serve.add_argument(
        "--drain-grace", type=float, default=5.0,
        help="seconds SIGTERM/Ctrl-C waits for in-flight requests to "
        "finish before cutting connections (default 5)",
    )
    p_serve.add_argument(
        "--ingest-queue", type=int, default=4096,
        help="server-side group-commit buffer bound in events; an "
        "ingest batch that would overflow it is refused (backpressure)",
    )
    p_serve.add_argument(
        "--ingest-flush-events", type=int, default=None,
        help="staged-event watermark past which an ingest flushes "
        "inline as one WAL entry (default: the queue bound)",
    )
    p_serve.add_argument(
        "--wal-dir", default=None,
        help="write-ahead-log directory: every append/expire is "
        "fsync'd before its ack and replayed on restart, so a killed "
        "server recovers to exactly its acknowledged state "
        "(incompatible with --workers)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_stream = sub.add_parser(
        "stream",
        help="stream synthetic building telemetry into a live serve "
        "endpoint (group commits, optional retention + continual "
        "releases)",
    )
    p_stream.add_argument("--host", default="127.0.0.1")
    p_stream.add_argument("--port", type=int, default=7777)
    p_stream.add_argument(
        "--events", type=int, default=10_000, help="events to stream"
    )
    p_stream.add_argument(
        "--rate", type=float, default=100.0,
        help="synthetic aggregate event rate in events/sec (event "
        "timestamps, not wall pacing)",
    )
    p_stream.add_argument(
        "--batch", type=int, default=512,
        help="group-commit size watermark in events",
    )
    p_stream.add_argument(
        "--max-age", type=float, default=None,
        help="group-commit age watermark in seconds; omit for size-only",
    )
    p_stream.add_argument(
        "--window", type=float, default=None,
        help="sliding retention window in seconds of event time; "
        "omit to retain everything",
    )
    p_stream.add_argument(
        "--release-period", type=float, default=None,
        help="seconds between continual private histogram releases; "
        "omit for no release schedule",
    )
    p_stream.add_argument(
        "--epsilon", type=float, default=1.0,
        help="per-release epsilon for the continual schedule",
    )
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.set_defaults(func=cmd_stream)

    p_cluster = sub.add_parser(
        "cluster",
        help="spawn and supervise an endpoint fleet from a JSON "
        "topology file (see repro.service.fleet)",
    )
    p_cluster.add_argument(
        "--topology", required=True,
        help="JSON topology: table spec plus ranges x replicas x "
        "ports x WAL dirs (format in docs/OPERATIONS.md)",
    )
    p_cluster.add_argument(
        "--drain-grace", type=float, default=5.0,
        help="seconds SIGTERM/Ctrl-C waits for children to drain "
        "before terminating them (default 5)",
    )
    p_cluster.add_argument(
        "--health-interval", type=float, default=0.2,
        help="seconds between supervision-event flushes (default 0.2)",
    )
    p_cluster.set_defaults(func=cmd_cluster)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
