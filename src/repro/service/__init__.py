"""High-traffic service facade over the sharded columnar engine.

:class:`ReleaseServer` is the minimal "million-user service" shape the
ROADMAP targets: it owns a (sharded) database, accepts batches of
histogram-release requests, reuses per-(shard, policy) mask work across
requests, and audits every release against a privacy budget.
"""

from repro.service.server import (
    BatchBudgetExceededError,
    ReleaseRequest,
    ReleaseResponse,
    ReleaseServer,
    ServiceStats,
    default_registry,
)

__all__ = [
    "BatchBudgetExceededError",
    "ReleaseRequest",
    "ReleaseResponse",
    "ReleaseServer",
    "ServiceStats",
    "default_registry",
]
