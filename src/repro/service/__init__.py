"""High-traffic service facade over the sharded columnar engine.

:class:`ReleaseServer` is the transport-independent core of the
release service: it owns a (sharded) database, accepts batches of
histogram-release requests, reuses per-(shard, policy) mask work across
requests, and audits every release against a privacy budget.  The
:mod:`repro.api` backends all delegate to it —
:class:`repro.service.rpc.RpcServer` (``python -m repro.cli serve``)
puts it on a TCP socket for remote :class:`repro.api.OsdpClient`\\ s.
"""

from repro.service.server import (
    BatchBudgetExceededError,
    ReleaseRequest,
    ReleaseResponse,
    ReleaseServer,
    ServiceStats,
    default_registry,
)

__all__ = [
    "BatchBudgetExceededError",
    "ReleaseRequest",
    "ReleaseResponse",
    "ReleaseServer",
    "ServiceStats",
    "default_registry",
]
