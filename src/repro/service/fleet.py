"""Spawn and supervise a cluster endpoint fleet from a topology file.

``python -m repro.cli cluster --topology fleet.json`` is the
operator's one command for the multi-endpoint story: it reads a JSON
topology (ranges × replicas × ports, WAL directories), forks one
:class:`repro.service.rpc.RpcServer` child per replica — each serving
its contiguous slice of the shared table, each recovering from its
write-ahead log first — then supervises them: a dead child is
restarted on its recorded port under
:class:`repro.api.resilience.RetryPolicy` backoff (WAL replay plus the
coordinator's resync puts it back in rotation), and SIGTERM drains the
whole fleet gracefully.

Topology file shape::

    {
      "table": {"dataset": "synthetic", "records": 4000, "seed": 0,
                "opt_in_rate": 0.5, "shards": 2},
      "host": "127.0.0.1",
      "ranges": [
        {"name": "lo", "lo": 0, "hi": 2000,
         "replicas": [{"port": 7801, "wal_dir": "/var/lib/repro/lo-r0"},
                      {"port": 7802, "wal_dir": "/var/lib/repro/lo-r1"}]},
        {"name": "hi", "lo": 2000, "hi": 4000,
         "replicas": [{"port": 7803}, {"port": 7804}]}
      ]
    }

Ranges must be listed in data order and tile ``[0, records)``
contiguously — that ordering is what makes the coordinator's
head-first ``expire_prefix`` and tail-range ``append_records`` mean
the same thing they mean on a single server.  ``port: 0`` binds an
ephemeral port (reported back through the supervisor); ``wal_dir`` is
optional — without it a replica is fast but recovers only via resync
from its peers.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.api.resilience import RetryPolicy

#: Restart pacing for dead children: six tries from 200 ms up to 5 s,
#: then the supervisor gives up on that endpoint (its peers keep
#: serving; the health line says so).
DEFAULT_RESTART_POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.2, multiplier=2.0, max_delay=5.0, jitter=0.25
)


def build_table(
    dataset: str = "synthetic",
    records: int = 100_000,
    seed: int = 0,
    opt_in_rate: float = 0.5,
):
    """The table a serving process exposes (shared with ``cli serve``).

    ``"synthetic"`` is a generic demo table (age, city, opt_in);
    ``"telemetry"`` is the building-sensor event schema
    (:mod:`repro.data.telemetry` — start it with ``--records 0`` as
    the empty sink for ``repro.cli stream``); a DPBench name expands
    that benchmark's histogram into one record per count with a
    synthetic opt-in column.  Deterministic in ``seed`` — every fleet
    replica building the same spec holds bit-identical columns, which
    is the replication contract's floor.
    """
    import numpy as np

    from repro.data.columnar import ColumnarDatabase

    rng = np.random.default_rng(seed)
    if dataset == "telemetry":
        from repro.data.telemetry import TelemetryConfig, telemetry_database

        return telemetry_database(
            int(records),
            TelemetryConfig(opt_in_rate=opt_in_rate, seed=seed),
        )
    if dataset == "synthetic":
        n = int(records)
        return ColumnarDatabase(
            {
                "age": rng.integers(0, 100, n),
                "city": rng.choice(list("abcd"), n),
                "opt_in": rng.random(n) < opt_in_rate,
            }
        )
    from repro.data.dpbench import generate_dpbench

    x = generate_dpbench(dataset, seed=seed)
    values = np.repeat(np.arange(len(x)), x)
    if records and records < len(values):
        values = rng.choice(values, size=int(records), replace=False)
        values.sort()
    return ColumnarDatabase(
        {
            "value": values,
            "opt_in": rng.random(len(values)) < opt_in_rate,
        }
    )


@dataclass(frozen=True)
class TableSpec:
    dataset: str = "synthetic"
    records: int = 100_000
    seed: int = 0
    opt_in_rate: float = 0.5
    shards: int = 2

    def build(self):
        return build_table(
            dataset=self.dataset,
            records=self.records,
            seed=self.seed,
            opt_in_rate=self.opt_in_rate,
        )


@dataclass(frozen=True)
class EndpointSpec:
    """One replica child: its slice, address, and durability home."""

    name: str
    range_name: str
    lo: int
    hi: int
    host: str = "127.0.0.1"
    port: int = 0
    wal_dir: str | None = None

    @property
    def shard_range(self) -> tuple[int, int]:
        return (self.lo, self.hi)


@dataclass(frozen=True)
class BudgetSpec:
    """The coordinator's privacy budget, declared with the topology.

    ``total`` is the global epsilon; ``quotas`` maps analyst names to
    per-analyst epsilon caps (they may oversubscribe ``total`` — both
    limits are enforced on every charge); ``dir`` selects the durable
    ledger: charges are fsync'd to an append-only journal there before
    each release returns, so a restarted coordinator resumes from the
    recovered spent total.
    """

    total: float
    quotas: tuple[tuple[str, float], ...] = ()
    dir: str | None = None

    @classmethod
    def from_dict(cls, doc: dict) -> "BudgetSpec":
        if "total" not in doc:
            raise ValueError("topology 'budget' section needs 'total'")
        quotas = tuple(
            (str(name), float(eps))
            for name, eps in dict(doc.get("quotas") or {}).items()
        )
        return cls(
            total=float(doc["total"]),
            quotas=quotas,
            dir=os.fspath(doc["dir"]) if doc.get("dir") else None,
        )

    def build_accountant(self):
        """The coordinator accountant this spec describes — a
        :class:`~repro.service.budget.DurableAccountant` when ``dir``
        is set, else a plain in-memory
        :class:`~repro.core.accountant.PrivacyAccountant`."""
        from repro.core.accountant import PrivacyAccountant

        quotas = dict(self.quotas) or None
        if self.dir:
            from repro.service.budget import DurableAccountant

            return DurableAccountant(
                self.dir, total_epsilon=self.total, quotas=quotas
            )
        return PrivacyAccountant(total_epsilon=self.total, quotas=quotas)


@dataclass(frozen=True)
class FleetTopology:
    table: TableSpec
    endpoints: tuple[EndpointSpec, ...]
    range_order: tuple[str, ...] = field(default=())
    budget: BudgetSpec | None = None

    def build_accountant(self):
        """The coordinator accountant from the topology's ``budget``
        section (None when the topology declares none)."""
        return self.budget.build_accountant() if self.budget else None

    @classmethod
    def from_dict(cls, doc: dict) -> "FleetTopology":
        table = TableSpec(**dict(doc.get("table") or {}))
        budget = (
            BudgetSpec.from_dict(dict(doc["budget"]))
            if doc.get("budget")
            else None
        )
        host = doc.get("host", "127.0.0.1")
        ranges = list(doc.get("ranges") or [])
        if not ranges:
            raise ValueError("topology needs at least one entry in 'ranges'")
        endpoints: list[EndpointSpec] = []
        order: list[str] = []
        cursor = 0
        for i, rng_doc in enumerate(ranges):
            name = str(rng_doc.get("name") or f"range{i}")
            lo, hi = int(rng_doc["lo"]), int(rng_doc["hi"])
            if lo != cursor:
                raise ValueError(
                    f"range {name!r} starts at {lo}, expected {cursor}: "
                    "ranges must tile [0, records) contiguously in data "
                    "order (appends go to the last range, expiry walks "
                    "from the first)"
                )
            if hi <= lo:
                raise ValueError(f"range {name!r} is empty ({lo}..{hi})")
            cursor = hi
            replicas = list(rng_doc.get("replicas") or [])
            if not replicas:
                raise ValueError(f"range {name!r} has no replicas")
            order.append(name)
            for r, rep_doc in enumerate(replicas):
                endpoints.append(
                    EndpointSpec(
                        name=f"{name}-r{r}",
                        range_name=name,
                        lo=lo,
                        hi=hi,
                        host=str(rep_doc.get("host", host)),
                        port=int(rep_doc.get("port", 0)),
                        wal_dir=(
                            os.fspath(rep_doc["wal_dir"])
                            if rep_doc.get("wal_dir")
                            else None
                        ),
                    )
                )
        if cursor != table.records:
            raise ValueError(
                f"ranges cover [0, {cursor}) but the table holds "
                f"{table.records} records; they must tile it exactly"
            )
        names = [ep.name for ep in endpoints]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate range names produce {names}")
        dirs = [ep.wal_dir for ep in endpoints if ep.wal_dir]
        if len(set(dirs)) != len(dirs):
            raise ValueError(f"replicas share a wal_dir in {dirs}")
        ports = [
            (ep.host, ep.port) for ep in endpoints if ep.port != 0
        ]
        if len(set(ports)) != len(ports):
            raise ValueError(f"replicas share an address in {ports}")
        return cls(
            table=table,
            endpoints=tuple(endpoints),
            range_order=tuple(order),
            budget=budget,
        )

    @classmethod
    def from_file(cls, path) -> "FleetTopology":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def _endpoint_spec_doc(spec: EndpointSpec) -> dict:
    return {
        "name": spec.name,
        "range_name": spec.range_name,
        "lo": spec.lo,
        "hi": spec.hi,
        "host": spec.host,
        "port": spec.port,
        "wal_dir": spec.wal_dir,
    }


def _fleet_endpoint_main(conn, table_doc: dict, spec_doc: dict) -> None:
    """One replica child: build, recover, serve, drain on SIGTERM.

    Module-level so it pickles under any multiprocessing start method.
    The bound address goes back through ``conn`` once serving is
    possible; SIGTERM routes through KeyboardInterrupt so the drain
    and WAL close run exactly as they do for Ctrl-C.
    """
    from repro.service.rpc import RpcServer
    from repro.service.server import ReleaseServer
    from repro.service.wal import WriteAheadLog

    table = TableSpec(**table_doc)
    full = table.build()
    part = full.slice_records(int(spec_doc["lo"]), int(spec_doc["hi"]))
    server = ReleaseServer(part.shard(table.shards))
    wal = None
    if spec_doc.get("wal_dir"):
        wal = WriteAheadLog(spec_doc["wal_dir"])
        wal.recover(server)
    rpc = RpcServer(
        server,
        host=spec_doc.get("host", "127.0.0.1"),
        port=int(spec_doc.get("port", 0)),
        wal=wal,
    )
    try:
        signal.signal(signal.SIGTERM, signal.default_int_handler)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    try:
        conn.send(rpc.address)
        conn.close()
        rpc.serve_forever()
    except KeyboardInterrupt:
        rpc.drain(grace=2.0)
    finally:
        rpc.close()


class _ChildState:
    __slots__ = (
        "spec",
        "process",
        "conn",
        "address",
        "started_at",
        "restarts",
        "attempt",
        "next_restart_at",
        "gave_up",
    )

    def __init__(self, spec: EndpointSpec):
        self.spec = spec
        self.process = None
        self.conn = None
        self.address = None
        self.started_at = 0.0
        self.restarts = 0
        self.attempt = 0
        self.next_restart_at = None
        self.gave_up = False


class FleetSupervisor:
    """Launch a topology's children and keep them alive.

    A monitor thread polls the fleet: a child that dies is restarted
    on its recorded port after ``retry``-paced backoff (seedable via
    ``rng`` — restart schedules in tests are deterministic), and a
    child that stays up ``stable_after`` seconds earns its attempt
    counter back.  An endpoint that exhausts its restart budget is
    abandoned (``gave_up``) — its replicas keep the range serving.
    """

    def __init__(
        self,
        topology: FleetTopology,
        retry: RetryPolicy | None = None,
        rng=None,
        poll_interval: float = 0.1,
        stable_after: float = 5.0,
        start_timeout: float = 30.0,
    ):
        self.topology = topology
        self._retry = retry or DEFAULT_RESTART_POLICY
        self._rng = rng
        self._poll_interval = poll_interval
        self._stable_after = stable_after
        self._start_timeout = start_timeout
        self._children = {
            spec.name: _ChildState(spec) for spec in topology.endpoints
        }
        self._lock = threading.Lock()
        self._events: deque[str] = deque(maxlen=1000)
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()
        self._started = False
        self._ctx = multiprocessing.get_context("fork")

    # -- events ---------------------------------------------------------
    def _event(self, line: str) -> None:
        with self._lock:
            self._events.append(line)

    def events(self, drain: bool = True) -> list[str]:
        """Supervision log lines since the last call (human-readable)."""
        with self._lock:
            lines = list(self._events)
            if drain:
                self._events.clear()
        return lines

    # -- spawning -------------------------------------------------------
    def backoff(self, attempt: int) -> float:
        """The pause before restart number ``attempt`` (0-based)."""
        return self._retry.delay(attempt, rng=self._rng)

    def _spawn(self, state: _ChildState, wait: bool) -> None:
        spec = state.spec
        if state.address is not None:
            # Restarts rebind the address clients already know.
            spec_doc = {
                **_endpoint_spec_doc(spec),
                "host": state.address[0],
                "port": state.address[1],
            }
        else:
            spec_doc = _endpoint_spec_doc(spec)
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_fleet_endpoint_main,
            args=(child_conn, self.topology.table.__dict__, spec_doc),
            name=f"repro-endpoint-{spec.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        state.process = process
        state.conn = parent_conn
        state.started_at = time.monotonic()
        if wait:
            self._await_address(state)

    def _await_address(self, state: _ChildState) -> bool:
        deadline = time.monotonic() + self._start_timeout
        while time.monotonic() < deadline:
            if state.conn.poll(0.05):
                try:
                    state.address = tuple(state.conn.recv())
                except (EOFError, OSError):
                    return False
                return True
            if not state.process.is_alive():
                return False
        return False

    def start(self) -> "FleetSupervisor":
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        for state in self._children.values():
            self._spawn(state, wait=False)
        for state in self._children.values():
            if not self._await_address(state):
                self.drain(grace=1.0)
                raise RuntimeError(
                    f"endpoint {state.spec.name} failed to report an "
                    f"address within {self._start_timeout}s"
                )
            self._event(
                f"endpoint {state.spec.name} serving "
                f"[{state.spec.lo},{state.spec.hi}) on "
                f"{state.address[0]}:{state.address[1]}"
            )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()
        return self

    # -- supervision ----------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self._poll_interval):
            now = time.monotonic()
            for state in self._children.values():
                self._check_child(state, now)

    def _check_child(self, state: _ChildState, now: float) -> None:
        process = state.process
        if process is not None and process.is_alive():
            if state.attempt and now - state.started_at >= self._stable_after:
                # Survived long enough: its crash history is forgiven.
                state.attempt = 0
            return
        if state.gave_up:
            return
        if state.next_restart_at is None:
            exitcode = process.exitcode if process is not None else None
            if state.attempt >= self._retry.max_attempts:
                state.gave_up = True
                self._event(
                    f"endpoint {state.spec.name} gave up after "
                    f"{state.attempt} restarts (replicas keep the range "
                    "serving)"
                )
                return
            pause = self.backoff(state.attempt)
            state.attempt += 1
            state.next_restart_at = now + pause
            self._event(
                f"endpoint {state.spec.name} died (exit {exitcode}); "
                f"restart {state.attempt}/{self._retry.max_attempts} in "
                f"{pause:.2f}s"
            )
            return
        if now >= state.next_restart_at:
            state.next_restart_at = None
            state.restarts += 1
            self._spawn(state, wait=False)
            if self._await_address(state):
                self._event(
                    f"endpoint {state.spec.name} restarted on "
                    f"{state.address[0]}:{state.address[1]} (WAL replay "
                    "restores acked writes; stale replicas rejoin via "
                    "resync)"
                )
            else:
                self._event(
                    f"endpoint {state.spec.name} restart attempt "
                    f"{state.attempt} did not come up"
                )

    # -- introspection --------------------------------------------------
    def health(self) -> dict[str, dict]:
        """Per-endpoint liveness: the ``cluster`` subcommand's printout."""
        out = {}
        for name, state in self._children.items():
            process = state.process
            out[name] = {
                "alive": bool(process is not None and process.is_alive()),
                "address": state.address,
                "pid": process.pid if process is not None else None,
                "restarts": state.restarts,
                "shard_range": state.spec.shard_range,
                "wal_dir": state.spec.wal_dir,
                "gave_up": state.gave_up,
            }
        return out

    def endpoints(self):
        """The fleet as :class:`repro.api.cluster.ClusterEndpoint`s,
        in topology (= data) order — hand these to ``ClusterBackend``."""
        from repro.api.cluster import ClusterEndpoint

        eps = []
        for spec in self.topology.endpoints:
            state = self._children[spec.name]
            if state.address is None:
                raise RuntimeError(
                    f"endpoint {spec.name} has no address yet; call "
                    "start() first"
                )
            eps.append(
                ClusterEndpoint(
                    host=state.address[0],
                    port=state.address[1],
                    shard_range=spec.shard_range,
                    name=spec.name,
                )
            )
        return eps

    # -- shutdown -------------------------------------------------------
    def drain(self, grace: float = 5.0) -> None:
        """SIGTERM every child (their graceful path), then reap.

        Children drain in-flight requests themselves; stragglers past
        the grace period are terminated, then killed.
        """
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        for state in self._children.values():
            process = state.process
            if process is not None and process.is_alive():
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.monotonic() + max(0.0, grace)
        for state in self._children.values():
            process = state.process
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=1.0)
            if state.conn is not None:
                state.conn.close()
                state.conn = None

    def close(self) -> None:
        self.drain(grace=1.0)

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
