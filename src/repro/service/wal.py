"""Per-endpoint write-ahead logging for the durable cluster write path.

A replicated write is only as durable as the weakest replica: the
cluster commit protocol (:mod:`repro.api.cluster`) may ack an
``append_records``/``expire_prefix`` the moment one replica has
applied it, so that replica must survive a SIGKILL *after* the ack
with the write intact.  This module is that guarantee:

* Every write is serialized with the PR-4 wire codec
  (:func:`repro.api.wire.encode_message` — the same JSON-header +
  raw-ndarray framing the socket speaks), assigned a monotonically
  increasing per-range **sequence number**, framed as
  ``[u32 length][u32 crc32][blob]``, and **fsync'd before the endpoint
  acks**.  The sequence numbers double as the replica-divergence
  detector and the resync cursor (``sync_range`` ships "entries after
  seq N").
* On startup :meth:`WriteAheadLog.recover` replays the log onto a
  freshly built server: load the last snapshot (if any), then apply
  every entry past it, so a SIGKILL'd endpoint comes back at exactly
  its acked state.  A torn tail — the frame a crash interrupted
  mid-write — fails its length/CRC check and is truncated away; it was
  never acked, so dropping it is correct.
* **Snapshot + truncate compaction** bounds replay: every
  ``snapshot_every`` entries the full column state is written
  (tmp + fsync + atomic rename) and the log truncated, so recovery
  cost is one snapshot load plus at most ``snapshot_every`` entries,
  not the endpoint's whole write history.
* The ``applied`` map (``write_id`` → result) makes replay idempotent
  at the *protocol* level: a coordinator retrying ``commit_write``
  after an ambiguous failure gets the recorded result back instead of
  a double-apply, even across an endpoint restart (the map rides in
  the snapshot).

:class:`MemoryWal` is the same interface without the disk — the
default for embedded/test servers, giving them the sequence numbers
and resync machinery without tmpdir ceremony (and, deliberately, no
crash durability).

WAL methods are not internally locked: on a live endpoint they are
only ever called under :class:`repro.service.rpc.RpcServer`'s
exclusive write lock (or before serving starts), which is the
serialization the sequence numbers rely on anyway.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections import OrderedDict

import numpy as np

from repro.api.wire import (
    WireError,
    encode_message,
    recv_frame_prefix,
    recv_message_body,
)

#: On-disk entry framing: payload byte count, then CRC32 of the payload.
_ENTRY_PREFIX = struct.Struct(">II")

#: The write operations a WAL entry may carry.
WAL_OPS = frozenset({"append_records", "expire_prefix"})


class WalError(RuntimeError):
    """A corrupt WAL structure or a sequencing violation."""


class _BytesReader:
    """A ``recv``-shaped view over bytes, so the socket-frame decoder
    (:func:`repro.api.wire.recv_message_body`) doubles as the on-disk
    blob decoder — one codec, two transports."""

    __slots__ = ("_view", "_pos")

    def __init__(self, data: bytes):
        self._view = memoryview(data)
        self._pos = 0

    def recv(self, n: int) -> bytes:
        chunk = self._view[self._pos : self._pos + n]
        self._pos += len(chunk)
        return bytes(chunk)


def _decode_blob(blob: bytes):
    reader = _BytesReader(blob)
    return recv_message_body(reader, recv_frame_prefix(reader))


def _frame(blob: bytes) -> bytes:
    return _ENTRY_PREFIX.pack(len(blob), zlib.crc32(blob)) + blob


def records_from_payload(payload):
    """Materialize an append payload: a columns mapping, or row dicts."""
    columns = payload.get("columns")
    if columns is not None:
        from repro.data.columnar import ColumnarDatabase

        return ColumnarDatabase(
            {str(k): np.asarray(v) for k, v in dict(columns).items()}
        )
    return list(payload["records"])


def payload_events(payload) -> int:
    """The number of records an ``append_records`` payload carries."""
    columns = payload.get("columns")
    if columns is not None:
        cols = dict(columns)
        if not cols:
            return 0
        return len(np.asarray(next(iter(cols.values()))))
    return len(payload["records"])


def merge_append_payloads(payloads) -> dict:
    """Coalesce several ``append_records`` payloads into one.

    The group-commit merge: a flush of N staged ingest batches logs
    **one** WAL entry whose apply is bit-identical to applying the
    batches in order — column concatenation and record-list
    concatenation both preserve arrival order, and the engine's own
    append path concatenates the same way.  All-columns payloads merge
    by concatenating each column (the batches must agree on the column
    set); all-records payloads merge their record lists.  Raises
    :class:`ValueError` on an empty or mixed set — the caller falls
    back to logging the batches individually.
    """
    payloads = list(payloads)
    if not payloads:
        raise ValueError("nothing to merge")
    if len(payloads) == 1:
        return payloads[0]
    if all(p.get("columns") is not None for p in payloads):
        column_maps = [dict(p["columns"]) for p in payloads]
        names = list(column_maps[0])
        for cols in column_maps[1:]:
            if set(cols) != set(names):
                raise ValueError(
                    "ingest batches disagree on column sets; cannot "
                    "merge into one group commit"
                )
        return {
            "columns": {
                name: np.concatenate(
                    [np.asarray(cols[name]) for cols in column_maps]
                )
                for name in names
            }
        }
    if all(p.get("columns") is None for p in payloads):
        merged: list = []
        for p in payloads:
            merged.extend(p["records"])
        return {"records": merged}
    raise ValueError("cannot merge columns and records payloads")


def validate_payload(wop: str, payload, db=None) -> None:
    """Reject a malformed write *before* it is logged or staged.

    Logging happens before applying (log-first is the durability
    order), so anything that would make the apply fail must fail here
    instead — a logged entry that cannot apply would poison every
    replay.  ``db`` (when given) additionally bounds ``expire_prefix``
    against the current record count.
    """
    if wop not in WAL_OPS:
        raise ValueError(f"unknown write op {wop!r}; expected one of {sorted(WAL_OPS)}")
    if wop == "append_records":
        records_from_payload(payload)
    else:
        n = int(payload["n_records"])
        if n < 0:
            raise ValueError("n_records must be non-negative")
        if db is not None and n > len(db):
            raise ValueError(
                f"cannot expire {n} records; only {len(db)} are stored"
            )


def apply_write(server, wop: str, payload):
    """Apply one WAL entry's operation to a :class:`ReleaseServer`."""
    if wop == "append_records":
        return server.append_records(records_from_payload(payload))
    if wop == "expire_prefix":
        return server.expire_prefix(int(payload["n_records"]))
    raise WalError(f"unknown wal op {wop!r}")


def database_columns(db) -> dict:
    """The full column state of a (sharded) columnar database, as the
    plain contiguous arrays a snapshot or ``sync_range`` base ships.

    Raises :class:`WalError` for layouts without a portable array form
    (ragged/object columns) — callers degrade (skip compaction, refuse
    a full-state sync) rather than snapshot something unreadable.
    """
    from repro.data.columnar import ColumnarDatabase
    from repro.data.sharding import ShardedColumnarDatabase

    if isinstance(db, ShardedColumnarDatabase):
        db = db.to_columnar()
    if not isinstance(db, ColumnarDatabase):
        raise WalError(
            f"cannot export columns from {type(db).__name__}; expected a "
            "columnar database"
        )
    columns = {}
    for name in db.column_names:
        column = db[name]
        if not isinstance(column, np.ndarray) or column.dtype.hasobject:
            raise WalError(
                f"column {name!r} has no portable snapshot form "
                "(ragged/object columns cannot ride the wire codec)"
            )
        columns[name] = np.ascontiguousarray(column)
    return columns


class MemoryWal:
    """The WAL interface without the disk: sequence numbers, retained
    entries for peer resync, and the applied-write replay map — but no
    crash durability (an endpoint restart starts the log empty).
    """

    durable = False

    def __init__(self, snapshot_every: int = 256, applied_limit: int = 1024):
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1")
        if applied_limit < 1:
            raise ValueError("applied_limit must be at least 1")
        self.snapshot_every = snapshot_every
        self.applied_limit = applied_limit
        #: The highest sequence number ever logged (0 = nothing yet).
        self.last_seq = 0
        #: Entries at or below this seq live only in the snapshot.
        self.snapshot_seq = 0
        #: Running CRC32 over every entry's ``(seq, wop, write_id)``
        #: identity — the divergence detector.  Two replicas at the
        #: same ``last_seq`` hold the same history iff their chains
        #: match; a replica that logged a write its peers never acked
        #: (an ambiguous commit failure) sits at an equal seq with a
        #: different chain, which resync resolves with a full reset.
        self.chain = 0
        #: :attr:`chain` as of :attr:`snapshot_seq`.
        self.snapshot_chain = 0
        self._entries: list[dict] = []
        self._applied: OrderedDict[str, dict] = OrderedDict()

    # -- logging --------------------------------------------------------
    def log(self, wop: str, payload, write_id=None, seq=None) -> int:
        """Durably record one write; returns its sequence number.

        ``seq`` may be passed explicitly (the resync path replays a
        peer's entries under their original numbers) but must be
        exactly the next in sequence — gaps would silently desync the
        replica from its peers.
        """
        expected = self.last_seq + 1
        if seq is None:
            seq = expected
        elif int(seq) != expected:
            raise WalError(
                f"out-of-sequence wal entry: got seq {seq}, expected "
                f"{expected} (a gap here means this replica missed a "
                "write and must resync from a peer)"
            )
        entry = {
            "seq": int(seq),
            "write_id": None if write_id is None else str(write_id),
            "wop": str(wop),
            "payload": payload,
            "chain": self._next_chain(seq, wop, write_id),
        }
        self._persist(entry)
        self._entries.append(entry)
        self.last_seq = int(seq)
        self.chain = entry["chain"]
        return int(seq)

    def _next_chain(self, seq, wop, write_id) -> int:
        token = f"{int(seq)}:{wop}:{write_id}".encode()
        return zlib.crc32(token, self.chain)

    def chain_at(self, seq: int) -> int | None:
        """The chain digest as of ``seq``, or None when not retained."""
        if seq == self.snapshot_seq:
            return self.snapshot_chain
        for entry in self._entries:
            if entry["seq"] == seq:
                return entry["chain"]
        return None

    def record_result(self, write_id, seq: int, result) -> None:
        """Remember a committed write's result for idempotent replay."""
        if write_id is None:
            return
        self._applied[str(write_id)] = {"seq": int(seq), "result": result}
        while len(self._applied) > self.applied_limit:
            self._applied.popitem(last=False)

    def applied_result(self, write_id) -> dict | None:
        """``{"seq", "result"}`` of an already-committed write, or None."""
        if write_id is None:
            return None
        return self._applied.get(str(write_id))

    # -- resync support -------------------------------------------------
    def entries_since(self, from_seq: int) -> list[dict]:
        """Retained entries with ``seq > from_seq`` (oldest first)."""
        return [e for e in self._entries if e["seq"] > from_seq]

    def applied_export(self) -> list[list]:
        """The applied map as ``[write_id, seq, result]`` rows (wire-safe)."""
        return [
            [wid, doc["seq"], doc["result"]]
            for wid, doc in self._applied.items()
        ]

    def install_base(self, columns: dict, last_seq: int, applied, chain=0) -> None:
        """Adopt a peer's full state as this WAL's new starting point.

        The resync path for a replica too far behind (or diverged —
        same or higher seq, different history): the engine has just
        been replaced with ``columns``; the log restarts empty at
        ``last_seq``, and the peer's applied map carries over so
        protocol-level retries stay idempotent.
        """
        self.last_seq = int(last_seq)
        self.snapshot_seq = int(last_seq)
        self.chain = int(chain)
        self.snapshot_chain = int(chain)
        self._entries = []
        self._applied = OrderedDict(
            (str(wid), {"seq": int(seq), "result": result})
            for wid, seq, result in (applied or [])
        )
        self._rewrite_storage(columns)

    def status(self) -> dict:
        return {
            "last_seq": self.last_seq,
            "snapshot_seq": self.snapshot_seq,
            "chain": self.chain,
            "log_entries": len(self._entries),
            "durable": self.durable,
        }

    # -- compaction -----------------------------------------------------
    def maybe_compact(self, server) -> bool:
        if len(self._entries) < self.snapshot_every:
            return False
        return self.compact(server)

    def compact(self, server) -> bool:
        """Snapshot the engine's current state and truncate the log.

        Returns False (leaving the log to grow) when the state has no
        portable snapshot form — correctness never depends on
        compaction, only replay cost does.
        """
        try:
            columns = database_columns(server.db)
        except WalError:
            return False
        self._write_snapshot(columns)
        self._entries = []
        self.snapshot_seq = self.last_seq
        self.snapshot_chain = self.chain
        self._truncate_log()
        return True

    # -- recovery (a no-op without a disk) ------------------------------
    def recover(self, server) -> dict:
        return {
            "snapshot_seq": 0,
            "replayed": 0,
            "skipped": 0,
            "truncated_bytes": 0,
        }

    def close(self) -> None:
        pass

    # -- storage hooks (memory: none) -----------------------------------
    def _persist(self, entry: dict) -> None:
        pass

    def _write_snapshot(self, columns: dict) -> None:
        pass

    def _truncate_log(self) -> None:
        pass

    def _rewrite_storage(self, columns: dict) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class WriteAheadLog(MemoryWal):
    """The durable WAL: ``wal.log`` (framed entries, fsync'd per write)
    plus ``snapshot.bin`` (full column state, atomically replaced) in
    one directory per endpoint.
    """

    durable = True
    LOG_NAME = "wal.log"
    SNAPSHOT_NAME = "snapshot.bin"

    def __init__(
        self,
        directory,
        snapshot_every: int = 256,
        applied_limit: int = 1024,
    ):
        super().__init__(
            snapshot_every=snapshot_every, applied_limit=applied_limit
        )
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._log_path = os.path.join(self.directory, self.LOG_NAME)
        self._snapshot_path = os.path.join(self.directory, self.SNAPSHOT_NAME)
        self._log_file = None

    # -- storage --------------------------------------------------------
    def _ensure_log_open(self):
        if self._log_file is None:
            self._log_file = open(self._log_path, "ab")
        return self._log_file

    def _persist(self, entry: dict) -> None:
        handle = self._ensure_log_open()
        handle.write(_frame(encode_message(entry)))
        handle.flush()
        # The ack contract: the entry is on stable storage before the
        # caller (and ultimately the coordinator) sees success.
        os.fsync(handle.fileno())

    def _write_snapshot(self, columns: dict) -> None:
        doc = {
            "last_seq": self.last_seq,
            "chain": self.chain,
            "applied": self.applied_export(),
            "columns": columns,
        }
        tmp_path = self._snapshot_path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(_frame(encode_message(doc)))
            handle.flush()
            os.fsync(handle.fileno())
        # Atomic replace: a crash leaves either the old snapshot or the
        # new one, never a half-written file under the real name.
        os.replace(tmp_path, self._snapshot_path)
        self._fsync_directory()

    def _truncate_log(self) -> None:
        self._close_log()
        with open(self._log_path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._fsync_directory()

    def _rewrite_storage(self, columns: dict) -> None:
        self._write_snapshot(columns)
        self._truncate_log()

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _close_log(self) -> None:
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None

    def close(self) -> None:
        self._close_log()

    # -- recovery -------------------------------------------------------
    def _read_snapshot(self) -> dict | None:
        try:
            with open(self._snapshot_path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        if len(data) < _ENTRY_PREFIX.size:
            raise WalError(f"snapshot {self._snapshot_path} is truncated")
        length, crc = _ENTRY_PREFIX.unpack_from(data, 0)
        blob = data[_ENTRY_PREFIX.size : _ENTRY_PREFIX.size + length]
        if len(blob) != length or zlib.crc32(blob) != crc:
            # Unlike a torn log tail (never acked, safe to drop), a bad
            # snapshot means acked state may be unrecoverable — refuse
            # loudly rather than silently serve pre-snapshot data.
            raise WalError(
                f"snapshot {self._snapshot_path} fails its integrity "
                "check; acked state cannot be reconstructed from it"
            )
        try:
            return _decode_blob(blob)
        except (WireError, EOFError) as exc:
            raise WalError(
                f"snapshot {self._snapshot_path} does not decode: {exc}"
            ) from exc

    def _read_log(self) -> tuple[list[dict], int, int]:
        """Parse the log; returns ``(entries, good_bytes, total_bytes)``.

        Parsing stops at the first frame that fails its length or CRC
        check — everything after an interrupted write is untrusted.
        """
        try:
            with open(self._log_path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return [], 0, 0
        entries, pos = [], 0
        while pos + _ENTRY_PREFIX.size <= len(data):
            length, crc = _ENTRY_PREFIX.unpack_from(data, pos)
            end = pos + _ENTRY_PREFIX.size + length
            if end > len(data):
                break  # torn tail: the crash interrupted this write
            blob = data[pos + _ENTRY_PREFIX.size : end]
            if zlib.crc32(blob) != crc:
                break
            try:
                entries.append(_decode_blob(blob))
            except (WireError, EOFError):
                break
            pos = end
        return entries, pos, len(data)

    def recover(self, server) -> dict:
        """Replay snapshot + log onto a freshly built server.

        Call once, before serving, on a server holding the same base
        data the endpoint was originally built with: a snapshot (when
        present) replaces that state wholesale, then every retained
        entry past it re-applies in sequence order.  The log's torn
        tail (if any) is truncated on disk so subsequent appends start
        from a clean frame boundary.
        """
        report = {
            "snapshot_seq": 0,
            "replayed": 0,
            "skipped": 0,
            "truncated_bytes": 0,
        }
        snapshot = self._read_snapshot()
        if snapshot is not None:
            from repro.data.columnar import ColumnarDatabase

            server.replace_database(
                ColumnarDatabase(
                    {
                        str(name): np.asarray(col)
                        for name, col in dict(snapshot["columns"]).items()
                    }
                )
            )
            self.last_seq = self.snapshot_seq = int(snapshot["last_seq"])
            self.chain = self.snapshot_chain = int(snapshot.get("chain", 0))
            self._applied = OrderedDict(
                (str(wid), {"seq": int(seq), "result": result})
                for wid, seq, result in snapshot.get("applied") or []
            )
            report["snapshot_seq"] = self.snapshot_seq
        entries, good_bytes, total_bytes = self._read_log()
        for entry in entries:
            seq = int(entry["seq"])
            if seq <= self.last_seq:
                # Pre-snapshot leftovers: a crash between snapshot
                # rename and log truncation leaves entries the
                # snapshot already contains.
                continue
            if seq != self.last_seq + 1:
                raise WalError(
                    f"wal {self._log_path} has a sequence gap: entry "
                    f"{seq} follows {self.last_seq}"
                )
            # Recompute the chain rather than trusting the stored one —
            # the link structure is what certifies an unbroken history.
            entry["chain"] = self._next_chain(
                seq, entry["wop"], entry.get("write_id")
            )
            self._entries.append(entry)
            self.last_seq = seq
            self.chain = entry["chain"]
            try:
                result = apply_write(server, entry["wop"], entry["payload"])
            except Exception:
                # The live path validates before logging, so this is a
                # poisoned entry (it failed live, too) — count it and
                # keep the sequence advancing, exactly as the live
                # server's state did.
                report["skipped"] += 1
            else:
                self.record_result(entry.get("write_id"), seq, result)
                report["replayed"] += 1
        if good_bytes < total_bytes:
            report["truncated_bytes"] = total_bytes - good_bytes
            self._close_log()
            with open(self._log_path, "r+b") as handle:
                handle.truncate(good_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        return report
