"""The socket transport over :class:`repro.service.server.ReleaseServer`.

The multi-node piece the ROADMAP calls for: a curator runs
:class:`RpcServer` next to the data (``python -m repro.cli serve``);
analysts connect with :class:`repro.api.RemoteBackend` (usually via
``OsdpClient.connect``).  Everything on the wire is the canonical
format of :mod:`repro.api.wire` — length-prefixed JSON headers plus raw
ndarray frames, no pickle — so the server can treat clients, and
clients the server, as black boxes.

Protocol: each exchange is one framed request message
``{"op": <name>, ...}`` answered by one framed reply, either
``{"ok": <result>}`` or ``{"err": <error document>}``.  Ops:

=================  ====================================================
``ping``           liveness + server identification
``mechanisms``     registered mechanism names
``release``        one :class:`ReleaseRequest` -> response document
``release_batch``  a list of requests -> list of response documents;
                   a mid-batch budget overrun ships the charged prefix
                   (see ``BatchBudgetExceededError``) in the error
``true_histogram`` a binning spec -> the exact histogram (audit path)
``append_records`` new rows (list of records, or a columns mapping of
                   arrays) -> tail shard index
``expire_prefix``  drop the n oldest records -> touched shard indices
``stats``          the server's cache counters
``budget``         remaining epsilon (None when unmetered)
=================  ====================================================

Handling is serialized with one lock — the release server's caches and
the accountant are single-writer structures; concurrency lives in the
sharded engine / worker pool underneath, not in request interleaving
(budget charging *must* be sequential to be meaningful).  Responses are
therefore bit-identical to calling ``ReleaseServer.handle`` in-process
with the same request, which is the contract the API tests pin.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from repro.api.wire import (
    error_to_wire,
    recv_message,
    request_from_wire,
    response_to_wire,
    send_message,
)
from repro.service.server import ReleaseServer


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one connection, many exchanges
        rpc: "RpcServer" = self.server.rpc  # type: ignore[attr-defined]
        while True:
            try:
                message = recv_message(self.request)
            except (EOFError, ConnectionError, OSError):
                return
            try:
                reply = {"ok": rpc.dispatch(message)}
            except BaseException as exc:  # ship the failure, keep serving
                reply = {"err": error_to_wire(exc)}
            try:
                send_message(self.request, reply)
            except (BrokenPipeError, ConnectionError, OSError):
                return


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class RpcServer:
    """Serve one :class:`ReleaseServer` on a TCP socket.

    ``port=0`` binds an ephemeral port (the loopback-test default);
    read the actual address back from :attr:`address`.  Use
    :meth:`start` for a background thread (tests, embedding) or
    :meth:`serve_forever` to block (the CLI).
    """

    def __init__(
        self,
        server: ReleaseServer,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.release_server = server
        self._lock = threading.Lock()
        self._tcp = _ThreadedTCPServer((host, port), _Handler)
        self._tcp.rpc = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral ports."""
        host, port = self._tcp.server_address[:2]
        return host, port

    def start(self) -> "RpcServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            name="repro-rpc-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._tcp.serve_forever()

    def close(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "RpcServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, message):
        """Serve one decoded request message; returns the ``ok`` payload."""
        if not isinstance(message, dict) or "op" not in message:
            raise ValueError("malformed message: expected {'op': ...}")
        op = message["op"]
        server = self.release_server
        with self._lock:
            if op == "ping":
                return {
                    "server": "repro.service.rpc",
                    "n_shards": server.n_shards,
                    "n_records": len(server.db),
                }
            if op == "mechanisms":
                return server._registry.names()
            if op == "release":
                request = request_from_wire(message["request"])
                return response_to_wire(server.handle(request))
            if op == "release_batch":
                requests = [
                    request_from_wire(doc) for doc in message["requests"]
                ]
                return [
                    response_to_wire(r) for r in server.handle_batch(requests)
                ]
            if op == "true_histogram":
                return server.true_histogram(message["binning"])
            if op == "append_records":
                return server.append_records(_records_from_wire(message))
            if op == "expire_prefix":
                return server.expire_prefix(int(message["n_records"]))
            if op == "stats":
                return server.stats.as_dict()
            if op == "budget":
                remaining = server.budget_remaining
                return None if remaining is None else float(remaining)
        raise ValueError(f"unknown op {op!r}")


def _records_from_wire(message):
    """An append payload: a columns mapping of arrays, or row dicts."""
    columns = message.get("columns")
    if columns is not None:
        from repro.data.columnar import ColumnarDatabase

        return ColumnarDatabase(dict(columns))
    return list(message["records"])


def connect(host: str, port: int, timeout: float | None = None) -> socket.socket:
    """One connected TCP socket to an :class:`RpcServer` (client side)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock
