"""The socket transport over :class:`repro.service.server.ReleaseServer`.

The multi-node piece the ROADMAP calls for: a curator runs
:class:`RpcServer` next to the data (``python -m repro.cli serve``);
analysts connect with :class:`repro.api.RemoteBackend` (usually via
``OsdpClient.connect``).  Everything on the wire is the canonical
format of :mod:`repro.api.wire` — length-prefixed JSON headers plus raw
ndarray frames, no pickle — so the server can treat clients, and
clients the server, as black boxes.

Protocol: each exchange is one framed request message
``{"op": <name>, ...}`` answered by one framed reply, either
``{"ok": <result>}`` or ``{"err": <error document>}``.  Ops:

=================  ====================================================
``ping``           liveness + server identification
``mechanisms``     registered mechanism names
``release``        one :class:`ReleaseRequest` -> response document
``release_batch``  a list of requests -> list of response documents;
                   a mid-batch budget overrun ships the charged prefix
                   (see ``BatchBudgetExceededError``) in the error
``true_histogram`` a binning spec -> the exact histogram (audit path)
``append_records`` new rows (list of records, or a columns mapping of
                   arrays) -> tail shard index
``expire_prefix``  drop the n oldest records -> touched shard indices
``stats``          the server's cache counters
``budget``         remaining epsilon (None when unmetered)
=================  ====================================================

Handling follows a **readers-writer discipline** (the one-big-lock
serialization of PR 4 is gone): the read-path ops — ``release``,
``release_batch``, ``true_histogram``, ``stats``, ``budget``, ``ping``,
``mechanisms`` — run concurrently under a shared lock, because every
release is a deterministic function of immutable column snapshots plus
an rng seed and the release server is internally thread-safe (caches
behind a short internal lock, noise sampling outside it, accountant
charges atomic).  Only the data mutations — ``append_records`` and
``expire_prefix`` — take the exclusive side, so an update never
interleaves with an in-flight release.  ``max_readers`` optionally
bounds read-side concurrency (the CLI's ``--max-readers``).  Responses
remain bit-identical to calling ``ReleaseServer.handle`` in-process
with the same request, which is the contract the API tests pin; with
an accountant, concurrent analysts' charges compose in arrival order.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from repro.api.wire import (
    error_to_wire,
    recv_message,
    request_from_wire,
    response_to_wire,
    send_message,
)
from repro.service.server import ReleaseServer


class ReadWriteLock:
    """A writer-preferring readers-writer lock.

    Many readers share the lock at once (optionally capped at
    ``max_readers``); a writer waits for the active readers to drain,
    holds the lock alone, and — being preferred — starves neither:
    once a writer is waiting, new readers queue behind it, so a steady
    stream of cheap reads cannot postpone an append forever.
    """

    def __init__(self, max_readers: int | None = None):
        if max_readers is not None and max_readers < 1:
            raise ValueError("max_readers must be at least 1")
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._max_readers = max_readers

    def acquire_read(self) -> None:
        with self._cond:
            while (
                self._writer
                or self._writers_waiting
                or (
                    self._max_readers is not None
                    and self._readers >= self._max_readers
                )
            ):
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Guard:
        def __init__(self, acquire, release):
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()
            return self

        def __exit__(self, *exc_info):
            self._release()

    def read(self) -> "_Guard":
        """Context manager for the shared (read) side."""
        return self._Guard(self.acquire_read, self.release_read)

    def write(self) -> "_Guard":
        """Context manager for the exclusive (write) side."""
        return self._Guard(self.acquire_write, self.release_write)


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one connection, many exchanges
        rpc: "RpcServer" = self.server.rpc  # type: ignore[attr-defined]
        while True:
            try:
                message = recv_message(self.request)
            except (EOFError, ConnectionError, OSError):
                return
            try:
                reply = {"ok": rpc.dispatch(message)}
            except BaseException as exc:  # ship the failure, keep serving
                reply = {"err": error_to_wire(exc)}
            try:
                send_message(self.request, reply)
            except (BrokenPipeError, ConnectionError, OSError):
                return


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class RpcServer:
    """Serve one :class:`ReleaseServer` on a TCP socket.

    ``port=0`` binds an ephemeral port (the loopback-test default);
    read the actual address back from :attr:`address`.  Use
    :meth:`start` for a background thread (tests, embedding) or
    :meth:`serve_forever` to block (the CLI).
    """

    def __init__(
        self,
        server: ReleaseServer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_readers: int | None = None,
    ):
        self.release_server = server
        self._lock = ReadWriteLock(max_readers=max_readers)
        self._tcp = _ThreadedTCPServer((host, port), _Handler)
        self._tcp.rpc = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral ports."""
        host, port = self._tcp.server_address[:2]
        return host, port

    def start(self) -> "RpcServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            name="repro-rpc-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._tcp.serve_forever()

    def close(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "RpcServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    #: Ops served concurrently under the shared lock: pure functions of
    #: the current column snapshot (plus an rng seed) or counter reads.
    READ_OPS = frozenset(
        {
            "ping",
            "mechanisms",
            "release",
            "release_batch",
            "true_histogram",
            "stats",
            "budget",
        }
    )
    #: Ops that mutate the data; exclusive — no release may be mid-
    #: flight while shards extend or trim.
    WRITE_OPS = frozenset({"append_records", "expire_prefix"})

    def dispatch(self, message):
        """Serve one decoded request message; returns the ``ok`` payload."""
        if not isinstance(message, dict) or "op" not in message:
            raise ValueError("malformed message: expected {'op': ...}")
        op = message["op"]
        if op in self.READ_OPS:
            with self._lock.read():
                return self._dispatch_read(op, message)
        if op in self.WRITE_OPS:
            with self._lock.write():
                return self._dispatch_write(op, message)
        raise ValueError(f"unknown op {op!r}")

    def _dispatch_read(self, op: str, message):
        server = self.release_server
        if op == "ping":
            return {
                "server": "repro.service.rpc",
                "n_shards": server.n_shards,
                "n_records": len(server.db),
            }
        if op == "mechanisms":
            return server._registry.names()
        if op == "release":
            request = request_from_wire(message["request"])
            return response_to_wire(server.handle(request))
        if op == "release_batch":
            requests = [
                request_from_wire(doc) for doc in message["requests"]
            ]
            return [
                response_to_wire(r) for r in server.handle_batch(requests)
            ]
        if op == "true_histogram":
            return server.true_histogram(message["binning"])
        if op == "stats":
            return server.stats.as_dict()
        assert op == "budget"
        remaining = server.budget_remaining
        return None if remaining is None else float(remaining)

    def _dispatch_write(self, op: str, message):
        server = self.release_server
        if op == "append_records":
            return server.append_records(_records_from_wire(message))
        assert op == "expire_prefix"
        return server.expire_prefix(int(message["n_records"]))


def _records_from_wire(message):
    """An append payload: a columns mapping of arrays, or row dicts."""
    columns = message.get("columns")
    if columns is not None:
        from repro.data.columnar import ColumnarDatabase

        return ColumnarDatabase(dict(columns))
    return list(message["records"])


def connect(host: str, port: int, timeout: float | None = None) -> socket.socket:
    """One connected TCP socket to an :class:`RpcServer` (client side)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock
