"""The socket transport over :class:`repro.service.server.ReleaseServer`.

The multi-node piece the ROADMAP calls for: a curator runs
:class:`RpcServer` next to the data (``python -m repro.cli serve``);
analysts connect with :class:`repro.api.RemoteBackend` (usually via
``OsdpClient.connect``).  Everything on the wire is the canonical
format of :mod:`repro.api.wire` — length-prefixed JSON headers plus raw
ndarray frames, no pickle — so the server can treat clients, and
clients the server, as black boxes.

Protocol: each exchange is one framed request message
``{"op": <name>, ...}`` answered by one framed reply, either
``{"ok": <result>}`` or ``{"err": <error document>}``.  Ops:

=================  ====================================================
``ping``           liveness + server identification
``mechanisms``     registered mechanism names
``release``        one :class:`ReleaseRequest` -> response document
``release_batch``  a list of requests -> list of response documents;
                   a mid-batch budget overrun ships the charged prefix
                   (see ``BatchBudgetExceededError``) in the error
``true_histogram`` a binning spec -> the exact histogram (audit path)
``hist_counts``    a (binning, policy) spec pair -> this server's
                   merged ``{"x", "x_ns"}`` int64 count arrays (the
                   cluster coordinator's merge input)
``append_records`` new rows (list of records, or a columns mapping of
                   arrays) -> tail shard index
``expire_prefix``  drop the n oldest records -> touched shard indices
``ingest``         stage an append batch in the server-side group-
                   commit buffer *without* logging it; bounded queue
                   (``ingest_queue`` events) — a batch that would
                   overflow is refused with ``accepted: false``
                   (backpressure), and staging past the
                   ``ingest_flush_events`` watermark flushes inline
``flush``          group-commit every staged batch as **one** WAL
                   entry (``merge_append_payloads``) -> events/seq;
                   staged events are durable only from this ack on
``ingest_status``  staged event/batch counts + the queue bounds
``prepare_write``  stage a replicated write (``write_id`` + op +
                   payload) without applying it; first half of the
                   cluster commit protocol
``commit_write``   apply a staged write: log to the WAL (fsync'd),
                   apply, remember the result per ``write_id`` so a
                   commit retry replays instead of double-applying
``wal_status``     the endpoint's WAL cursor (``last_seq``,
                   ``snapshot_seq``, retained entries, record count)
``sync_range``     entries after a follower's ``from_seq`` — or the
                   full column state when the follower is too far
                   behind (or diverged ahead) — for replica resync
``sync_apply``     adopt a peer's base state and/or replay its entries
                   under their original sequence numbers
``stats``          the server's cache counters
``transport_stats`` the socket tier's counters (timeouts, replays,
                   drains, overload rejections, ...) plus per-op
                   latency percentiles (``op_latency``)
``budget``         the full ledger view: totals, per-entry
                   label/epsilon/policy/analyst rows, per-analyst
                   quota standing (None when unmetered)
=================  ====================================================

Any request may additionally carry ``req_id`` (idempotency key: the
reply is cached and a retried id re-serves it without re-running the
op) and ``deadline`` (the client's remaining seconds of patience; an
op that would start after that budget has elapsed is refused with
``DeadlineExceeded`` instead of spending privacy budget).

Handling follows a **readers-writer discipline** (the one-big-lock
serialization of PR 4 is gone): the read-path ops — ``release``,
``release_batch``, ``true_histogram``, ``stats``, ``budget``, ``ping``,
``mechanisms`` — run concurrently under a shared lock, because every
release is a deterministic function of immutable column snapshots plus
an rng seed and the release server is internally thread-safe (caches
behind a short internal lock, noise sampling outside it, accountant
charges atomic).  Only the data mutations — ``append_records`` and
``expire_prefix`` — take the exclusive side, so an update never
interleaves with an in-flight release.  ``max_readers`` optionally
bounds read-side concurrency (the CLI's ``--max-readers``).  Responses
remain bit-identical to calling ``ReleaseServer.handle`` in-process
with the same request, which is the contract the API tests pin; with
an accountant, concurrent analysts' charges compose in arrival order.
"""

from __future__ import annotations

import dataclasses
import math
import socket
import socketserver
import threading
import time
from collections import OrderedDict, deque

from repro.api.resilience import DeadlineExceeded, ServerOverloaded
from repro.api.wire import (
    WireError,
    error_to_wire,
    recv_frame_prefix,
    recv_message_body,
    request_from_wire,
    response_to_wire,
    send_message,
)
from repro.service.server import ReleaseServer
from repro.service.wal import (
    MemoryWal,
    apply_write,
    database_columns,
    merge_append_payloads,
    payload_events,
    validate_payload,
)


class ReadWriteLock:
    """A writer-preferring readers-writer lock.

    Many readers share the lock at once (optionally capped at
    ``max_readers``); a writer waits for the active readers to drain,
    holds the lock alone, and — being preferred — starves neither:
    once a writer is waiting, new readers queue behind it, so a steady
    stream of cheap reads cannot postpone an append forever.
    """

    def __init__(self, max_readers: int | None = None):
        if max_readers is not None and max_readers < 1:
            raise ValueError("max_readers must be at least 1")
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._max_readers = max_readers

    def acquire_read(self) -> None:
        with self._cond:
            while (
                self._writer
                or self._writers_waiting
                or (
                    self._max_readers is not None
                    and self._readers >= self._max_readers
                )
            ):
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Guard:
        def __init__(self, acquire, release):
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()
            return self

        def __exit__(self, *exc_info):
            self._release()

    def read(self) -> "_Guard":
        """Context manager for the shared (read) side."""
        return self._Guard(self.acquire_read, self.release_read)

    def write(self) -> "_Guard":
        """Context manager for the exclusive (write) side."""
        return self._Guard(self.acquire_write, self.release_write)


class _Handler(socketserver.BaseRequestHandler):
    """One connection, many exchanges.

    Each exchange splits the read in two: blocking for the 4-byte
    length prefix is the connection's *idle* state (no message has been
    committed yet — a drain may cut the connection here), while reading
    the body after the prefix marks the exchange **in-flight** (the
    drain path lets it finish and be answered).  A corrupt frame gets
    an error reply and then drops the connection — after a framing
    failure the stream position is unknown, so continuing would desync
    silently.  Read timeouts bound how long a half-sent request may
    pin a handler thread.
    """

    def setup(self) -> None:
        super().setup()
        rpc: "RpcServer" = self.server.rpc  # type: ignore[attr-defined]
        if rpc.read_timeout is not None:
            self.request.settimeout(rpc.read_timeout)
        rpc._register_connection(self.request)

    def finish(self) -> None:
        self.server.rpc._unregister_connection(  # type: ignore[attr-defined]
            self.request
        )
        super().finish()

    def handle(self) -> None:
        rpc: "RpcServer" = self.server.rpc  # type: ignore[attr-defined]
        sock = self.request
        while True:
            try:
                header_len = recv_frame_prefix(sock)
            except TimeoutError:
                rpc._bump("read_timeouts")
                return
            except (WireError, EOFError, ConnectionError, OSError):
                return
            if not rpc._begin_exchange():
                return  # draining: refuse work that arrives now
            try:
                try:
                    message = recv_message_body(sock, header_len)
                except TimeoutError:
                    rpc._bump("read_timeouts")
                    return
                except WireError as exc:
                    rpc._bump("wire_errors")
                    try:
                        send_message(sock, {"err": error_to_wire(exc)})
                    except OSError:
                        pass
                    return
                except (EOFError, ConnectionError, OSError):
                    return
                reply = rpc.serve_message(message, time.monotonic())
                try:
                    send_message(sock, reply)
                except (BrokenPipeError, ConnectionError, OSError):
                    return
            finally:
                rpc._end_exchange()


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _IdemEntry:
    """A single-flight slot in the idempotent-reply cache."""

    __slots__ = ("done", "reply")

    def __init__(self):
        self.done = threading.Event()
        self.reply = None


class RpcServer:
    """Serve one :class:`ReleaseServer` on a TCP socket.

    ``port=0`` binds an ephemeral port (the loopback-test default);
    read the actual address back from :attr:`address`.  Use
    :meth:`start` for a background thread (tests, embedding) or
    :meth:`serve_forever` to block (the CLI).

    Hardening knobs (all off/neutral by default so embedded and test
    uses are unchanged):

    * ``read_timeout`` — per-connection socket timeout: a peer that
      stalls mid-frame loses its connection after this many seconds
      instead of pinning a handler thread forever.
    * Requests may carry ``req_id`` (any string): the reply is cached
      and an identical ``req_id`` seen again — a client retry after an
      ambiguous transport failure — re-serves the cached reply instead
      of re-running the op, so a retried ``release`` never charges the
      accountant twice.  Concurrent duplicates are single-flighted.
      The cache keeps the most recent ``idempotency_limit`` settled
      replies.
    * Requests may carry ``deadline`` (seconds, the client's remaining
      budget at send time): if that much time has passed by the moment
      the op would start running, the server answers
      ``DeadlineExceeded`` instead of spending privacy budget on a
      response the caller has already abandoned.
    * :meth:`drain` — graceful shutdown: stop accepting, let in-flight
      exchanges finish (up to a grace period), then cut idle
      connections.  The CLI wires SIGTERM to this.
    * ``admission_limit`` — overload shedding: a bounded in-flight
      admission gate *ahead of* the readers-writer lock.  At most this
      many ops may be between admission and completion; excess work is
      refused immediately with a retryable
      :class:`~repro.api.resilience.ServerOverloaded` carrying an
      ``admission_retry_after`` hint, so a flooded endpoint degrades
      to fast refusals instead of queueing unboundedly behind the
      lock.  ``ping`` and ``transport_stats`` bypass the gate —
      operators must be able to observe an overloaded server.  An
      overload rejection is **evicted** from the idempotency cache:
      the refusal means the op never ran, so a retried ``req_id`` must
      re-attempt it rather than replay the refusal forever.
    """

    #: Most staged-but-uncommitted writes retained; a prepare evicted
    #: under this pressure surfaces to the coordinator as the same
    #: ``KeyError`` a restart produces, triggering the resync path.
    PENDING_LIMIT = 256

    #: Recent per-op latency samples retained for the percentile view.
    LATENCY_WINDOW = 512

    #: Ops that bypass the admission gate: cheap introspection an
    #: operator needs precisely when the server is overloaded.
    ADMISSION_EXEMPT = frozenset({"ping", "transport_stats"})

    def __init__(
        self,
        server: ReleaseServer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_readers: int | None = None,
        read_timeout: float | None = None,
        idempotency_limit: int = 1024,
        wal=None,
        ingest_queue: int = 4096,
        ingest_flush_events: int | None = None,
        admission_limit: int | None = None,
        admission_retry_after: float = 0.05,
    ):
        if read_timeout is not None and read_timeout <= 0:
            raise ValueError("read_timeout must be positive (or None)")
        if idempotency_limit < 1:
            raise ValueError("idempotency_limit must be at least 1")
        if ingest_queue < 1:
            raise ValueError("ingest_queue must be at least 1")
        if ingest_flush_events is not None and ingest_flush_events < 1:
            raise ValueError("ingest_flush_events must be at least 1")
        if admission_limit is not None and admission_limit < 1:
            raise ValueError("admission_limit must be at least 1 (or None)")
        if admission_retry_after <= 0:
            raise ValueError("admission_retry_after must be positive")
        self.release_server = server
        self.read_timeout = read_timeout
        # Every write — direct or via the commit protocol — goes
        # through the WAL; the default in-memory one supplies sequence
        # numbers and resync state without disk durability.  A
        # durable WriteAheadLog should have had recover() run against
        # ``server`` before it is handed here.
        self.wal = MemoryWal() if wal is None else wal
        # Staged prepares: write_id -> (wop, payload), LRU-bounded.
        self._pending_lock = threading.Lock()
        self._pending: OrderedDict[str, tuple] = OrderedDict()
        # Server-side group-commit staging: validated-but-unlogged
        # append payloads awaiting a flush.  Mutated only under the
        # exclusive lock (ingest/flush are write ops); staged events
        # are NOT durable — durability begins at the flush ack.
        self.ingest_queue = int(ingest_queue)
        self.ingest_flush_events = (
            self.ingest_queue
            if ingest_flush_events is None
            else int(ingest_flush_events)
        )
        self._ingest_batches: list[dict] = []
        self._ingest_events = 0
        self._lock = ReadWriteLock(max_readers=max_readers)
        self._tcp = _ThreadedTCPServer((host, port), _Handler)
        self._tcp.rpc = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._serving = False
        self._closed = False
        # -- connection / in-flight bookkeeping (drain support) --------
        self._conn_cond = threading.Condition()
        self._connections: set = set()
        self._inflight = 0
        self._draining = False
        # -- idempotent replies ----------------------------------------
        self._idem_limit = idempotency_limit
        self._idem_lock = threading.Lock()
        self._idem: OrderedDict[str, _IdemEntry] = OrderedDict()
        # -- overload admission gate -----------------------------------
        self.admission_limit = admission_limit
        self.admission_retry_after = float(admission_retry_after)
        self._admission = (
            None
            if admission_limit is None
            else threading.BoundedSemaphore(admission_limit)
        )
        # -- transport counters ----------------------------------------
        self._stats_lock = threading.Lock()
        self.transport_stats: dict[str, int] = {
            "connections": 0,
            "exchanges": 0,
            "read_timeouts": 0,
            "wire_errors": 0,
            "idempotent_replays": 0,
            "deadline_rejections": 0,
            "overload_rejections": 0,
            "drains": 0,
            "aborted_in_flight": 0,
            "stuck_serve_threads": 0,
        }
        # -- per-op latency (op -> recent seconds, op -> total count) --
        self._op_latency: dict[str, deque] = {}
        self._op_counts: dict[str, int] = {}

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._stats_lock:
            self.transport_stats[counter] += by

    # ------------------------------------------------------------------
    # Connection / exchange accounting (the drain machinery)
    # ------------------------------------------------------------------
    def _register_connection(self, sock) -> None:
        self._bump("connections")
        with self._conn_cond:
            self._connections.add(sock)

    def _unregister_connection(self, sock) -> None:
        with self._conn_cond:
            self._connections.discard(sock)
            self._conn_cond.notify_all()

    def _begin_exchange(self) -> bool:
        """Claim an in-flight slot; refused once draining has begun."""
        with self._conn_cond:
            if self._draining:
                return False
            self._inflight += 1
            return True

    def _end_exchange(self) -> None:
        with self._conn_cond:
            self._inflight -= 1
            self._conn_cond.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral ports."""
        host, port = self._tcp.server_address[:2]
        return host, port

    def start(self) -> "RpcServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._serving = True
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            name="repro-rpc-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._serving = True
        self._tcp.serve_forever()

    def drain(self, grace: float = 5.0) -> None:
        """Gracefully stop: finish in-flight reads, refuse new ones.

        Stops accepting connections, marks the server draining (an
        exchange whose length prefix arrives from now on is refused),
        waits up to ``grace`` seconds for in-flight exchanges to be
        answered, then cuts the remaining connections.  Exchanges still
        unfinished after the grace period are counted in
        ``transport_stats["aborted_in_flight"]``.
        """
        self._bump("drains")
        self._stop(grace)

    def close(self, grace: float = 5.0) -> None:
        """Shut down; equivalent to an unannounced :meth:`drain`."""
        self._stop(grace)

    def _stop(self, grace: float) -> None:
        with self._conn_cond:
            if self._closed:
                return
            self._closed = True
            self._draining = True
        # shutdown() blocks forever if serve_forever never ran (its
        # completion event starts unset) — only call it when serving.
        if self._serving:
            self._tcp.shutdown()
        self._tcp.server_close()
        deadline = time.monotonic() + max(0.0, grace)
        with self._conn_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._bump("aborted_in_flight", self._inflight)
                    break
                self._conn_cond.wait(remaining)
            stragglers = list(self._connections)
        # Cut surviving connections: idle handlers blocked on a length
        # prefix wake with EOF/OSError and exit; past-grace in-flight
        # reads are severed rather than left to pin threads.
        for sock in stragglers:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5)
            if self._thread.is_alive():
                # Threads cannot be force-killed; the daemon flag means
                # it cannot outlive the process, so surface the event
                # loudly in stats instead of silently leaking it.
                self._bump("stuck_serve_threads")
            self._thread = None
        self.wal.close()

    def __enter__(self) -> "RpcServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Idempotent serving
    # ------------------------------------------------------------------
    def serve_message(self, message, received_at: float | None = None):
        """One request message -> one ``{"ok"|"err": ...}`` reply dict.

        Messages carrying a ``req_id`` are single-flighted and their
        replies cached: a duplicate (a retry after an ambiguous
        failure) waits for the original if it is still running, then
        receives the byte-identical cached reply — effectful ops run
        at most once per id.
        """
        self._bump("exchanges")
        req_id = message.get("req_id") if isinstance(message, dict) else None
        if req_id is None:
            return self._serve_once(message, received_at)
        entry, owner = None, False
        with self._idem_lock:
            entry = self._idem.get(str(req_id))
            if entry is None:
                entry, owner = _IdemEntry(), True
                self._idem[str(req_id)] = entry
            else:
                self._idem.move_to_end(str(req_id))
        if not owner:
            entry.done.wait()
            self._bump("idempotent_replays")
            return entry.reply
        try:
            entry.reply = self._serve_once(message, received_at)
        finally:
            # Two kinds of reply must not stick in the cache: a crash
            # before any reply was produced, and an overload rejection
            # — the gate refused to *run* the op, so a retried req_id
            # must re-attempt it, not replay the refusal forever.
            if entry.reply is None or _is_overload_reply(entry.reply):
                with self._idem_lock:
                    self._idem.pop(str(req_id), None)
            entry.done.set()
        self._prune_idem()
        return entry.reply

    def _serve_once(self, message, received_at: float | None):
        op = message.get("op") if isinstance(message, dict) else None
        start = time.perf_counter()
        try:
            return {"ok": self.dispatch(message, received_at=received_at)}
        except BaseException as exc:  # ship the failure, keep serving
            return {"err": error_to_wire(exc)}
        finally:
            if isinstance(op, str):
                self._record_latency(op, time.perf_counter() - start)

    def _record_latency(self, op: str, seconds: float) -> None:
        with self._stats_lock:
            window = self._op_latency.get(op)
            if window is None:
                window = self._op_latency[op] = deque(
                    maxlen=self.LATENCY_WINDOW
                )
                self._op_counts[op] = 0
            window.append(seconds)
            self._op_counts[op] += 1

    def _latency_view(self) -> dict:
        """Per-op p50/p95/p99 (seconds) over the recent sample window."""
        with self._stats_lock:
            snapshot = {
                op: (self._op_counts[op], sorted(window))
                for op, window in self._op_latency.items()
            }
        return {
            op: {
                "count": count,
                "p50": _percentile(samples, 0.50),
                "p95": _percentile(samples, 0.95),
                "p99": _percentile(samples, 0.99),
            }
            for op, (count, samples) in snapshot.items()
        }

    def _prune_idem(self) -> None:
        """Evict oldest *settled* entries beyond the cache bound.

        Pending entries are never evicted — they are the single-flight
        rendezvous between an in-progress op and its duplicates.
        """
        with self._idem_lock:
            if len(self._idem) <= self._idem_limit:
                return
            for req_id in list(self._idem):
                if len(self._idem) <= self._idem_limit:
                    break
                if self._idem[req_id].done.is_set():
                    del self._idem[req_id]

    def _check_deadline(self, message, received_at: float | None) -> None:
        budget = message.get("deadline")
        if budget is None or received_at is None:
            return
        if time.monotonic() - received_at >= float(budget):
            self._bump("deadline_rejections")
            raise DeadlineExceeded(
                f"request abandoned: its {float(budget):.3f}s deadline "
                "expired before the server could start it"
            )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    #: Ops served concurrently under the shared lock: pure functions of
    #: the current column snapshot (plus an rng seed) or counter reads.
    READ_OPS = frozenset(
        {
            "ping",
            "mechanisms",
            "release",
            "release_batch",
            "true_histogram",
            "hist_counts",
            "stats",
            "transport_stats",
            "budget",
            # prepare_write only stages (its own lock guards _pending)
            # and reads WAL replay state; wal_status/sync_range read
            # the WAL + column state — all consistent under the shared
            # side because every mutation takes the exclusive side.
            "prepare_write",
            "wal_status",
            "sync_range",
            "ingest_status",
        }
    )
    #: Ops that mutate the data; exclusive — no release may be mid-
    #: flight while shards extend or trim.  ``ingest`` only stages, but
    #: its watermark may flush inline, so it takes the exclusive side
    #: too (staging is cheap; the lock cost is the flush it amortizes).
    WRITE_OPS = frozenset(
        {
            "append_records",
            "expire_prefix",
            "commit_write",
            "sync_apply",
            "ingest",
            "flush",
        }
    )

    def dispatch(self, message, received_at: float | None = None):
        """Serve one decoded request message; returns the ``ok`` payload.

        The admission gate (when configured) is claimed *before* the
        readers-writer lock: an op beyond the in-flight bound is
        refused in microseconds with :class:`ServerOverloaded` instead
        of joining an unbounded queue behind the lock.  The carried
        deadline (if any) is checked *after* lock acquisition: a
        request that waited out its budget behind a writer is rejected
        at the moment work — and any accountant charge — would
        otherwise begin.
        """
        if not isinstance(message, dict) or "op" not in message:
            raise ValueError("malformed message: expected {'op': ...}")
        op = message["op"]
        if op not in self.READ_OPS and op not in self.WRITE_OPS:
            raise ValueError(f"unknown op {op!r}")
        with self._admit(op):
            if op in self.READ_OPS:
                with self._lock.read():
                    self._check_deadline(message, received_at)
                    return self._dispatch_read(op, message)
            with self._lock.write():
                self._check_deadline(message, received_at)
                return self._dispatch_write(op, message)

    def _admit(self, op: str):
        """Claim an admission slot, or refuse the op outright."""
        gate = self._admission
        if gate is None or op in self.ADMISSION_EXEMPT:
            return _NULL_GUARD
        if not gate.acquire(blocking=False):
            self._bump("overload_rejections")
            raise ServerOverloaded(
                f"server overloaded: {self.admission_limit} ops already "
                f"in flight; retry after {self.admission_retry_after:.3g}s",
                retry_after=self.admission_retry_after,
            )
        return _SemaphoreGuard(gate)

    def _dispatch_read(self, op: str, message):
        server = self.release_server
        if op == "ping":
            from repro.mechanisms import kernels

            return {
                "server": "repro.service.rpc",
                "n_shards": server.n_shards,
                "n_records": len(server.db),
                # which kernel backend serves this process's releases;
                # "numba" means the noise/count kernels drop the GIL,
                # so max_readers concurrency scales on real cores
                # (docs/PERFORMANCE.md §13)
                "kernel_backend": kernels.active_backend(),
            }
        if op == "mechanisms":
            return server._registry.names()
        if op == "release":
            request = _stamp_analyst(
                request_from_wire(message["request"]), message
            )
            return response_to_wire(server.handle(request))
        if op == "release_batch":
            requests = [
                _stamp_analyst(request_from_wire(doc), message)
                for doc in message["requests"]
            ]
            return [
                response_to_wire(r) for r in server.handle_batch(requests)
            ]
        if op == "true_histogram":
            return server.true_histogram(message["binning"])
        if op == "hist_counts":
            x, x_ns = server.histogram_counts(
                message["binning"], message["policy"]
            )
            return {"x": x, "x_ns": x_ns}
        if op == "stats":
            return server.stats.as_dict()
        if op == "transport_stats":
            with self._stats_lock:
                stats: dict = dict(self.transport_stats)
            stats["op_latency"] = self._latency_view()
            return stats
        if op == "prepare_write":
            return self._prepare_write(message)
        if op == "ingest_status":
            return {
                "pending_events": self._ingest_events,
                "pending_batches": len(self._ingest_batches),
                "queue": self.ingest_queue,
                "flush_events": self.ingest_flush_events,
            }
        if op == "wal_status":
            return self._wal_status()
        if op == "sync_range":
            return self._sync_range(message)
        assert op == "budget"
        return server.budget_view()

    def _dispatch_write(self, op: str, message):
        if op in ("append_records", "expire_prefix"):
            # Direct (non-replicated) writes take the same log-first
            # path as committed ones, so a WAL-backed endpoint is
            # durable regardless of which door the write came through.
            payload = _write_payload(op, message)
            _seq, result = self._apply_logged(op, payload)
            return result
        if op == "commit_write":
            return self._commit_write(message)
        if op == "ingest":
            return self._ingest(message)
        if op == "flush":
            return self._flush_ingest(message)
        assert op == "sync_apply"
        return self._sync_apply(message)

    # ------------------------------------------------------------------
    # Group-commit ingest (server-side staging)
    # ------------------------------------------------------------------
    def _ingest(self, message):
        """Stage one append batch; flush inline past the watermark.

        Validation runs at staging time so a flush can never be
        poisoned by a batch it already accepted.  A batch that would
        push the staged total past ``ingest_queue`` is refused —
        ``accepted: false`` is the backpressure signal; the client
        flushes (or waits) and resends.
        """
        payload = _write_payload("append_records", message)
        validate_payload("append_records", payload)
        n = payload_events(payload)
        if self._ingest_events + n > self.ingest_queue:
            return {
                "accepted": False,
                "pending": self._ingest_events,
                "queue": self.ingest_queue,
            }
        self._ingest_batches.append(payload)
        self._ingest_events += n
        doc = {
            "accepted": True,
            "pending": self._ingest_events,
            "flushed": False,
            "seq": None,
        }
        if self._ingest_events >= self.ingest_flush_events:
            flushed = self._flush_ingest({})
            doc.update(
                pending=0, flushed=True, seq=flushed["seq"],
                events=flushed["events"],
            )
        return doc

    def _flush_ingest(self, message):
        """Group-commit every staged batch as one logged write.

        The batches merge into a single ``append_records`` WAL entry
        (one fsync for the whole group — the throughput win), applied
        under the exclusive lock already held.  Unmergeable batch sets
        (mixed records/columns shapes) degrade to one entry per batch.
        A failed flush restores the unlogged batches to the buffer:
        staged events are only dropped once their entry is durable.
        """
        batches = self._ingest_batches
        events = self._ingest_events
        self._ingest_batches, self._ingest_events = [], 0
        if not batches:
            return {"events": 0, "batches": 0, "seq": None, "pending": 0}
        try:
            merged = merge_append_payloads(batches)
        except ValueError:
            merged = None
        if merged is not None:
            try:
                seq, _result = self._apply_logged(
                    "append_records", merged,
                    write_id=message.get("write_id"),
                )
            except BaseException:
                self._ingest_batches = batches + self._ingest_batches
                self._ingest_events += events
                raise
            return {
                "events": events,
                "batches": len(batches),
                "seq": seq,
                "pending": self._ingest_events,
            }
        seq = None
        done = 0
        try:
            for batch in batches:
                seq, _result = self._apply_logged("append_records", batch)
                done += 1
        except BaseException:
            remainder = batches[done:]
            self._ingest_batches = remainder + self._ingest_batches
            self._ingest_events += sum(
                payload_events(b) for b in remainder
            )
            raise
        return {
            "events": events,
            "batches": len(batches),
            "seq": seq,
            "pending": self._ingest_events,
        }

    # ------------------------------------------------------------------
    # The durable write path (WAL + commit protocol)
    # ------------------------------------------------------------------
    def _apply_logged(self, wop: str, payload, write_id: str | None = None):
        """Log-then-apply one write under the exclusive lock.

        Validation runs *before* logging: an invalid write (bad
        payload, expire beyond the stored count) must fail without
        consuming a sequence number, or replicas would desync on
        errors.  Once logged — fsync'd by a durable WAL — the write is
        part of this endpoint's acked history.
        """
        server = self.release_server
        validate_payload(wop, payload, db=server.db)
        seq = self.wal.log(wop, payload, write_id=write_id)
        result = apply_write(server, wop, payload)
        self.wal.record_result(write_id, seq, result)
        self.wal.maybe_compact(server)
        return seq, result

    def _prepare_write(self, message):
        write_id = str(message["write_id"])
        wop = message["wop"]
        done = self.wal.applied_result(write_id)
        if done is not None:
            # A coordinator retrying a whole write after an ambiguous
            # failure: this replica already committed it.
            return {
                "state": "applied",
                "seq": done["seq"],
                "result": done["result"],
                "last_seq": self.wal.last_seq,
            }
        payload = _write_payload(wop, message)
        validate_payload(wop, payload)
        with self._pending_lock:
            self._pending[write_id] = (wop, payload)
            self._pending.move_to_end(write_id)
            while len(self._pending) > self.PENDING_LIMIT:
                self._pending.popitem(last=False)
        return {"state": "prepared", "last_seq": self.wal.last_seq}

    def _commit_write(self, message):
        write_id = str(message["write_id"])
        done = self.wal.applied_result(write_id)
        if done is not None:
            return {
                "seq": done["seq"],
                "result": done["result"],
                "last_seq": self.wal.last_seq,
                "replayed": True,
            }
        with self._pending_lock:
            staged = self._pending.pop(write_id, None)
        if staged is None:
            raise KeyError(
                f"unknown write_id {write_id!r}: its prepare was not "
                "seen (endpoint restarted, or staging was evicted); "
                "the replica must resync before serving"
            )
        wop, payload = staged
        seq, result = self._apply_logged(wop, payload, write_id=write_id)
        return {
            "seq": seq,
            "result": result,
            "last_seq": self.wal.last_seq,
            "replayed": False,
        }

    def _wal_status(self):
        status = self.wal.status()
        status["n_records"] = len(self.release_server.db)
        with self._pending_lock:
            status["pending"] = len(self._pending)
        return status

    def _sync_range(self, message):
        """Catch-up material for a follower at ``from_seq``.

        When the follower's cursor falls inside the retained log, ship
        just the entries after it; otherwise (fallen behind a
        compaction, or *ahead* of this peer — a diverged replica whose
        extra writes were never cluster-acked) ship the full column
        state as a base to reset onto.
        """
        from_seq = int(message["from_seq"])
        wal = self.wal
        if wal.snapshot_seq <= from_seq <= wal.last_seq:
            chain_at = wal.chain_at(from_seq)
            if chain_at is not None:
                return {
                    "base": None,
                    "entries": wal.entries_since(from_seq),
                    "last_seq": wal.last_seq,
                    # The follower (via its coordinator) checks its own
                    # chain against this before trusting the entries —
                    # equal seq with a different history means
                    # divergence, which needs the base path below.
                    "chain_at": chain_at,
                }
        return {
            "base": {
                "columns": database_columns(self.release_server.db),
                "last_seq": wal.last_seq,
                "chain": wal.chain,
                "applied": wal.applied_export(),
            },
            "entries": [],
            "last_seq": wal.last_seq,
        }

    def _sync_apply(self, message):
        server = self.release_server
        base = message.get("base")
        entries = list(message.get("entries") or ())
        applied_count = 0
        if base is not None:
            from repro.data.columnar import ColumnarDatabase

            server.replace_database(ColumnarDatabase(dict(base["columns"])))
            self.wal.install_base(
                dict(base["columns"]),
                int(base["last_seq"]),
                base.get("applied"),
                chain=base.get("chain", 0),
            )
        for entry in entries:
            seq = int(entry["seq"])
            if seq <= self.wal.last_seq:
                continue  # already applied (overlap with our own log)
            wop, payload = entry["wop"], entry["payload"]
            validate_payload(wop, payload, db=server.db)
            self.wal.log(
                wop, payload, write_id=entry.get("write_id"), seq=seq
            )
            result = apply_write(server, wop, payload)
            self.wal.record_result(entry.get("write_id"), seq, result)
            applied_count += 1
        with self._pending_lock:
            # Staged prepares predate the resync and their commits (if
            # any) arrived via the entries above; anything else will be
            # re-prepared by its coordinator.
            self._pending.clear()
        self.wal.maybe_compact(server)
        return {
            "last_seq": self.wal.last_seq,
            "n_records": len(server.db),
            "applied_entries": applied_count,
        }


class _SemaphoreGuard:
    """Release an admission slot on exit (the op was admitted)."""

    __slots__ = ("_gate",)

    def __init__(self, gate):
        self._gate = gate

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._gate.release()


class _NullAdmission:
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None


_NULL_GUARD = _NullAdmission()


def _percentile(sorted_samples, q: float) -> float:
    """Nearest-rank percentile of an ascending sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return float(sorted_samples[rank - 1])


def _is_overload_reply(reply) -> bool:
    if not isinstance(reply, dict):
        return False
    err = reply.get("err")
    return isinstance(err, dict) and err.get("kind") == "server_overloaded"


def _stamp_analyst(request, message):
    """Apply the message-level ``analyst`` credential to a release
    request that does not carry its own (the request's wins)."""
    analyst = message.get("analyst")
    if analyst and not request.analyst:
        return dataclasses.replace(request, analyst=str(analyst))
    return request


def _records_from_wire(message):
    """An append payload: a columns mapping of arrays, or row dicts."""
    columns = message.get("columns")
    if columns is not None:
        from repro.data.columnar import ColumnarDatabase

        return ColumnarDatabase(dict(columns))
    return list(message["records"])


def _write_payload(wop: str, message) -> dict:
    """Extract just the WAL payload fields from a request message."""
    if wop == "append_records":
        if message.get("columns") is not None:
            return {"columns": dict(message["columns"])}
        return {"records": list(message["records"])}
    if wop == "expire_prefix":
        return {"n_records": int(message["n_records"])}
    raise ValueError(f"unknown write op {wop!r}")


def connect(host: str, port: int, timeout: float | None = None) -> socket.socket:
    """One connected TCP socket to an :class:`RpcServer` (client side)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock
