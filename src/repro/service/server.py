"""The histogram-release server: sharded engine + caches + accountant.

A deployment of the paper's mechanisms is not one release but a stream
of them: many analysts, many policies, many binnings, one budget.  The
server models exactly that traffic shape while staying in-process (no
sockets — transport is out of scope; the request/response dataclasses
are the wire format a transport would serialize):

* **Sharded evaluation.**  The database is a
  :class:`repro.data.sharding.ShardedColumnarDatabase`; masks and bin
  indices are computed shard by shard (on the database's executor when
  it has one) and merged bit-identically to single-node evaluation.
* **Cross-request caching.**  Policy masks are cached per
  ``(shard, policy)`` and bin indices per ``(shard, binning)``, so a
  burst of requests over the same policy pays the mask once; the
  assembled :class:`~repro.queries.histogram.HistogramInput` is cached
  per ``(binning, policy)``.  Cache keys prefer the objects'
  ``cache_key()`` *value identity* (so a transport that deserializes a
  fresh-but-equal policy or binning per request still hits), falling
  back to object identity for opaque predicates (the fallback pins the
  object so CPython cannot recycle its ``id``).  The key set is
  bounded: beyond ``cache_limit`` distinct policies/binnings the
  least-recently-used key and all of its per-shard arrays are evicted,
  so a long-lived server cannot grow without bound.  The data is
  immutable, so live entries never invalidate.
* **Budget accounting.**  Every release charges the accountant under
  the request's policy (DP mechanisms charge under ``P_all`` per Lemma
  3.1) *before* sampling; a request that would exceed the budget raises
  :class:`repro.core.accountant.BudgetExceededError` and releases
  nothing.  A batch that fails mid-way raises
  :class:`BatchBudgetExceededError`, which carries the responses of the
  already-charged prefix — charged noise is never silently discarded.

Caching the mask/histogram is free privacy-wise: the cached values are
exact data-dependent intermediates, and privacy is only consumed when a
mechanism samples a release from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.core.policy import NON_SENSITIVE, Policy
from repro.data.columnar import ColumnarDatabase
from repro.data.sharding import ShardedColumnarDatabase
from repro.mechanisms.base import MechanismRegistry
from repro.queries.histogram import (
    HistogramInput,
    HistogramQuery,
    counts_from_mask,
)


class BatchBudgetExceededError(BudgetExceededError):
    """A batch ran out of budget mid-way.

    ``responses`` holds the already-produced (and already-charged)
    prefix; ``failed_request`` is the first request that could not be
    afforded.  Earlier releases consumed real budget, so they must
    reach the caller even though the batch as a whole failed.
    """

    def __init__(self, message: str, responses, failed_request):
        super().__init__(message)
        self.responses = list(responses)
        self.failed_request = failed_request


def default_registry() -> MechanismRegistry:
    """The standard pool: the paper's OSDP and DP release algorithms."""
    from repro.mechanisms.dawa import Dawa
    from repro.mechanisms.dawaz import DawaZ
    from repro.mechanisms.laplace import LaplaceHistogram
    from repro.mechanisms.osdp_laplace import (
        HybridOsdpLaplace,
        OsdpLaplaceHistogram,
        OsdpLaplaceL1Histogram,
    )
    from repro.mechanisms.osdp_rr import OsdpRRHistogram

    registry = MechanismRegistry()
    registry.register("laplace", LaplaceHistogram)
    registry.register("dawa", Dawa)
    registry.register("dawaz", DawaZ)
    registry.register("osdp_rr", OsdpRRHistogram)
    registry.register("osdp_laplace", OsdpLaplaceHistogram)
    registry.register("osdp_laplace_l1", OsdpLaplaceL1Histogram)
    registry.register("osdp_hybrid", HybridOsdpLaplace)
    return registry


@dataclass(frozen=True)
class ReleaseRequest:
    """One histogram-release job.

    ``mechanism`` names a registry entry; ``binning`` is any object with
    ``bin_indices``/``n_bins`` (the :mod:`repro.queries.histogram`
    binnings); ``policy`` decides sensitivity; ``seed=None`` draws fresh
    OS entropy per request (the production default), while an explicit
    seed makes the response reproducible.
    """

    mechanism: str
    epsilon: float
    binning: object
    policy: Policy
    n_trials: int = 1
    seed: int | None = None
    label: str = ""


@dataclass(frozen=True)
class ReleaseResponse:
    """The released estimates plus the accounting trail."""

    request: ReleaseRequest
    estimates: np.ndarray  # (n_trials, n_bins)
    epsilon_spent: float
    budget_remaining: float | None
    cache_hit: bool


@dataclass
class ServiceStats:
    """Cache effectiveness counters (per shard-level computation)."""

    mask_hits: int = 0
    mask_misses: int = 0
    index_hits: int = 0
    index_misses: int = 0
    hist_hits: int = 0
    hist_misses: int = 0
    evictions: int = 0
    requests: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class ReleaseServer:
    """Serve histogram-release requests from one sharded database."""

    def __init__(
        self,
        db,
        registry: MechanismRegistry | None = None,
        accountant: PrivacyAccountant | None = None,
        n_shards: int | None = None,
        executor=None,
        cache_limit: int = 128,
    ):
        if isinstance(db, ShardedColumnarDatabase):
            if executor is not None:
                db = db.with_executor(executor)
        else:
            if not isinstance(db, ColumnarDatabase):
                db = ColumnarDatabase.from_database(db)
            db = db.shard(n_shards or 1, executor=executor)
        if cache_limit < 2:
            # A single request keeps two keys live (binning + policy);
            # with fewer slots they would evict each other mid-request.
            raise ValueError("cache_limit must be at least 2")
        self._db: ShardedColumnarDatabase = db
        self._registry = registry or default_registry()
        self.accountant = accountant
        self.cache_limit = cache_limit
        self.stats = ServiceStats()
        # (shard index, policy key) -> int8 mask; (shard index,
        # binning key) -> int64 bin indices; (binning key, policy key)
        # -> HistogramInput.  Keys come from _key(); _keyed tracks
        # every live key in insertion order — it pins identity-keyed
        # objects (so CPython cannot recycle an id into a stale hit)
        # and is the LRU eviction queue bounding total cache growth.
        self._mask_cache: dict[tuple, np.ndarray] = {}
        self._index_cache: dict[tuple, np.ndarray] = {}
        self._hist_cache: dict[tuple, HistogramInput] = {}
        self._keyed: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def db(self) -> ShardedColumnarDatabase:
        return self._db

    @property
    def n_shards(self) -> int:
        return self._db.n_shards

    @property
    def budget_remaining(self) -> float | None:
        return self.accountant.remaining if self.accountant else None

    # ------------------------------------------------------------------
    # Cached shard-level building blocks
    # ------------------------------------------------------------------
    def _key(self, obj: object) -> tuple:
        """The cache key of a policy/binning: value identity when possible.

        Objects exposing a non-None ``cache_key()`` (the algebra
        policies, the standard binnings) key by value, so equal objects
        deserialized per request share cache entries; opaque objects
        (predicate policies) key by ``id`` and are pinned.  Either way
        the key is registered in the LRU eviction queue.
        """
        value_key = getattr(obj, "cache_key", lambda: None)()
        key = ("v", value_key) if value_key is not None else ("id", id(obj))
        if key in self._keyed:
            # LRU touch: move to the back of the eviction queue, so a
            # hot key is never the one evicted when the limit is hit.
            self._keyed[key] = self._keyed.pop(key)
        else:
            if len(self._keyed) >= self.cache_limit:
                self._evict(next(iter(self._keyed)))
            self._keyed[key] = obj
        return key

    def _evict(self, key: tuple) -> None:
        """Drop one keyed object and every cache entry referencing it."""
        self._keyed.pop(key, None)
        for cache in (self._mask_cache, self._index_cache):
            for entry in [k for k in cache if k[1] == key]:
                del cache[entry]
        for entry in [k for k in self._hist_cache if key in k]:
            del self._hist_cache[entry]
        self.stats.evictions += 1

    def _per_shard(
        self, cache: dict, key: tuple, compute, hits: str, misses: str
    ) -> list:
        """Fetch or fill a key's per-shard cache entries.

        Entries for one key are all-or-nothing: fills write every shard
        in one ``map_shards`` pass (getting the executor's parallelism)
        and :meth:`_evict` removes a key's entries atomically, so a
        partial state cannot occur.
        """
        if (0, key) not in cache:
            setattr(
                self.stats, misses, getattr(self.stats, misses) + self.n_shards
            )
            for i, value in enumerate(self._db.map_shards(compute)):
                cache[(i, key)] = value
        else:
            setattr(
                self.stats, hits, getattr(self.stats, hits) + self.n_shards
            )
        return [cache[(i, key)] for i in range(self.n_shards)]

    def shard_masks(self, policy: Policy) -> list[np.ndarray]:
        """Per-shard policy masks, cached per ``(shard, policy key)``."""
        return self._per_shard(
            self._mask_cache,
            self._key(policy),
            policy.evaluate_batch,
            "mask_hits",
            "mask_misses",
        )

    def shard_bin_indices(self, binning) -> list[np.ndarray]:
        """Per-shard bin-index arrays, cached per ``(shard, binning key)``."""
        return self._per_shard(
            self._index_cache,
            self._key(binning),
            binning.bin_indices,
            "index_hits",
            "index_misses",
        )

    def histogram_input(
        self, binning, policy: Policy
    ) -> tuple[HistogramInput, bool]:
        """The merged ``(x, x_ns, mask)`` bundle and whether it was cached.

        Built from the cached per-shard masks and indices; the merge is
        exact integer addition, so the result is bit-identical to
        :meth:`repro.queries.histogram.HistogramInput.from_columnar` on
        the same sharded database.
        """
        key = (self._key(binning), self._key(policy))
        cached = self._hist_cache.get(key)
        if cached is not None:
            self.stats.hist_hits += 1
            return cached, True
        self.stats.hist_misses += 1
        n_bins = binning.n_bins
        masks = self.shard_masks(policy)
        indices = self.shard_bin_indices(binning)
        hist = HistogramInput.from_shard_counts(
            [
                counts_from_mask(idx, mask == NON_SENSITIVE, n_bins)
                for idx, mask in zip(indices, masks)
            ]
        )
        hist.ns_support_sorted  # warm the release fast-path views
        self._hist_cache[key] = hist
        return hist, False

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, request: ReleaseRequest) -> ReleaseResponse:
        """Serve one request: cache-assisted histogram, charge, release."""
        if request.n_trials < 1:
            raise ValueError("n_trials must be at least 1")
        hist, cache_hit = self.histogram_input(request.binning, request.policy)
        mechanism = self._registry.create(request.mechanism, request.epsilon)
        # The ledger records the policy whose x_ns the mechanism
        # consumed (DP mechanisms charge under P_all per Lemma 3.1) —
        # the composition theorem (Theorem 3.3) folds the entries into
        # the minimum relaxation.
        mechanism.charge_for(
            self.accountant,
            request.policy,
            label=request.label or request.mechanism,
        )
        rng = np.random.default_rng(request.seed)
        estimates = mechanism.release_batch(hist, rng, request.n_trials)
        self.stats.requests += 1
        return ReleaseResponse(
            request=request,
            estimates=estimates,
            epsilon_spent=request.epsilon,
            budget_remaining=self.budget_remaining,
            cache_hit=cache_hit,
        )

    def handle_batch(
        self, requests: Sequence[ReleaseRequest]
    ) -> list[ReleaseResponse]:
        """Serve a traffic batch in order.

        Requests sharing a ``(binning, policy)`` pair hit the histogram
        cache after the first.  Malformed requests (unknown mechanism,
        bad trial count, non-positive epsilon) are rejected up front,
        before *any* request is charged — budget must never be spent on
        a batch that was doomed by a typo.  The accountant then sees
        every request; when one overruns the budget, the
        already-charged prefix must not be lost, so the failure is
        re-raised as :class:`BatchBudgetExceededError` carrying those
        responses.
        """
        for request in requests:
            if request.mechanism not in self._registry:
                raise KeyError(
                    f"unknown mechanism {request.mechanism!r}; registered: "
                    f"{self._registry.names()}"
                )
            if request.n_trials < 1:
                raise ValueError("n_trials must be at least 1")
            if request.epsilon <= 0:
                raise ValueError("epsilon must be positive")
        responses: list[ReleaseResponse] = []
        for request in requests:
            try:
                responses.append(self.handle(request))
            except BudgetExceededError as exc:
                raise BatchBudgetExceededError(
                    str(exc), responses, request
                ) from exc
        return responses

    def query_true_histogram(self, query: HistogramQuery) -> np.ndarray:
        """The exact (non-private) histogram — for offline error audits."""
        return self._db.histogram(query.binning, query.n_bins)
