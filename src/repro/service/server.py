"""The histogram-release server: sharded engine + caches + accountant.

A deployment of the paper's mechanisms is not one release but a stream
of them: many analysts, many policies, many binnings, one budget.  The
server models exactly that traffic shape while staying in-process (no
sockets — transport is out of scope; the request/response dataclasses
are the wire format a transport would serialize):

* **Sharded evaluation.**  The database is a
  :class:`repro.data.sharding.ShardedColumnarDatabase`; masks and bin
  indices are computed shard by shard (on the database's executor when
  it has one) and merged bit-identically to single-node evaluation.
* **Cross-request caching.**  Policy masks are cached per
  ``(shard, policy)`` and bin indices per ``(shard, binning)``, so a
  burst of requests over the same policy pays the mask once; the
  assembled :class:`~repro.queries.histogram.HistogramInput` is cached
  per ``(binning, policy)``.  Cache keys prefer the objects'
  ``cache_key()`` *value identity* (so a transport that deserializes a
  fresh-but-equal policy or binning per request still hits), falling
  back to object identity for opaque predicates (the fallback pins the
  object so CPython cannot recycle its ``id``).  The key set is
  bounded: beyond ``cache_limit`` distinct policies/binnings the
  least-recently-used key and all of its per-shard arrays are evicted,
  so a long-lived server cannot grow without bound.  The data is
  immutable, so live entries never invalidate.
* **Budget accounting.**  Every release charges the accountant under
  the request's policy (DP mechanisms charge under ``P_all`` per Lemma
  3.1) *before* sampling; a request that would exceed the budget raises
  :class:`repro.core.accountant.BudgetExceededError` and releases
  nothing.  A batch that fails mid-way raises
  :class:`BatchBudgetExceededError`, which carries the responses of the
  already-charged prefix — charged noise is never silently discarded.
* **Live data.**  :meth:`ReleaseServer.append_records` and
  :meth:`ReleaseServer.expire_prefix` mutate the sharded database in
  place (tail-shard extension / front-shard trim — never a full
  reslice).  Every cache entry carries the shard versions it was
  computed under, so a data update invalidates exactly the affected
  shards' entries lazily: the next request recomputes the stale shards
  and reuses the rest.
* **Specs at the boundary.**  A request's ``policy``/``binning`` may be
  the live objects *or* their wire specs (plain dicts, see
  :func:`repro.core.policy_language.policy_from_spec`); specs are
  resolved per request and still share cache entries via value
  identity.  With a :class:`repro.data.workers.ShardWorkerPool` as the
  executor, histogram assembly skips the parent-side mask arrays
  entirely: each worker answers a spec request with its shard's
  ``(x, x_ns)`` pair, so per-request traffic stays O(bins), not
  O(records).

* **Thread safety.**  One server may be driven by many threads: the
  caches, the sharded engine (a worker pool's pipes serve one fan-out
  at a time) and the stats sit behind one internal lock, held only for
  histogram assembly — a dict lookup on a warm cache — while the
  release sampling runs outside it, and accountant charges are atomic
  in the accountant itself.  Concurrent ``handle`` calls therefore
  overlap their noise kernels; the RPC tier adds a readers-writer
  discipline on top so releases run concurrently while
  ``append_records``/``expire_prefix`` run exclusively.

Caching the mask/histogram is free privacy-wise: the cached values are
exact data-dependent intermediates, and privacy is only consumed when a
mechanism samples a release from them.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.accountant import BudgetExceededError, PrivacyAccountant
from repro.core.policy import NON_SENSITIVE, Policy
from repro.core.policy_language import policy_from_spec
from repro.data.columnar import ColumnarDatabase
from repro.data.sharding import ShardedColumnarDatabase
from repro.mechanisms.base import MechanismRegistry
from repro.queries.histogram import (
    HistogramInput,
    HistogramQuery,
    _shard_histogram_counts,
    binning_from_spec,
    counts_from_mask,
)


class BatchBudgetExceededError(BudgetExceededError):
    """A batch ran out of budget mid-way.

    ``responses`` holds the already-produced (and already-charged)
    prefix; ``failed_request`` is the first request that could not be
    afforded.  Earlier releases consumed real budget, so they must
    reach the caller even though the batch as a whole failed.
    """

    def __init__(self, message: str, responses, failed_request):
        super().__init__(message)
        self.responses = list(responses)
        self.failed_request = failed_request

    def __reduce__(self):
        # Exceptions with extra constructor arguments do not pickle by
        # default; the charged prefix must survive process and socket
        # boundaries (see repro.api.wire for the JSON form), so spell
        # the reconstruction out.
        return (
            type(self),
            (str(self), self.responses, self.failed_request),
        )


def default_registry() -> MechanismRegistry:
    """The standard pool: the paper's OSDP and DP release algorithms."""
    from repro.mechanisms.dawa import Dawa
    from repro.mechanisms.dawaz import DawaZ
    from repro.mechanisms.laplace import LaplaceHistogram
    from repro.mechanisms.osdp_laplace import (
        HybridOsdpLaplace,
        OsdpLaplaceHistogram,
        OsdpLaplaceL1Histogram,
    )
    from repro.mechanisms.osdp_rr import OsdpRRHistogram

    registry = MechanismRegistry()
    registry.register("laplace", LaplaceHistogram)
    registry.register("dawa", Dawa)
    registry.register("dawaz", DawaZ)
    registry.register("osdp_rr", OsdpRRHistogram)
    registry.register("osdp_laplace", OsdpLaplaceHistogram)
    registry.register("osdp_laplace_l1", OsdpLaplaceL1Histogram)
    registry.register("osdp_hybrid", HybridOsdpLaplace)
    return registry


@dataclass(frozen=True)
class ReleaseRequest:
    """One histogram-release job.

    ``mechanism`` names a registry entry; ``binning`` is any object with
    ``bin_indices``/``n_bins`` (the :mod:`repro.queries.histogram`
    binnings) or its wire spec; ``policy`` decides sensitivity — a
    :class:`~repro.core.policy.Policy` or its wire spec (a plain dict,
    the form a network transport would deliver); ``seed=None`` draws
    fresh OS entropy per request (the production default), while an
    explicit seed makes the response reproducible.  ``analyst`` is the
    credential the charge is booked under — with per-analyst quotas on
    the accountant it is also enforced as a sub-budget.
    """

    mechanism: str
    epsilon: float
    binning: object
    policy: "Policy | Mapping"
    n_trials: int = 1
    seed: int | None = None
    label: str = ""
    analyst: str = ""


@dataclass(frozen=True)
class ReleaseResponse:
    """The released estimates plus the accounting trail."""

    request: ReleaseRequest
    estimates: np.ndarray  # (n_trials, n_bins)
    epsilon_spent: float
    budget_remaining: float | None
    cache_hit: bool


@dataclass
class ServiceStats:
    """Cache effectiveness counters (per shard-level computation)."""

    mask_hits: int = 0
    mask_misses: int = 0
    index_hits: int = 0
    index_misses: int = 0
    hist_hits: int = 0
    hist_misses: int = 0
    evictions: int = 0
    requests: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class ReleaseServer:
    """Serve histogram-release requests from one sharded database."""

    def __init__(
        self,
        db,
        registry: MechanismRegistry | None = None,
        accountant: PrivacyAccountant | None = None,
        n_shards: int | None = None,
        executor=None,
        cache_limit: int = 128,
    ):
        if isinstance(db, ShardedColumnarDatabase):
            if executor is not None:
                db = db.with_executor(executor)
        else:
            if not isinstance(db, ColumnarDatabase):
                db = ColumnarDatabase.from_database(db)
            db = db.shard(n_shards or 1, executor=executor)
        if cache_limit < 2:
            # A single request keeps two keys live (binning + policy);
            # with fewer slots they would evict each other mid-request.
            raise ValueError("cache_limit must be at least 2")
        self._db: ShardedColumnarDatabase = db
        self._registry = registry or default_registry()
        self.accountant = accountant
        self.cache_limit = cache_limit
        self.stats = ServiceStats()
        # Every cache value is paired with the shard version(s) it was
        # computed under (see ShardedColumnarDatabase.shard_versions);
        # an incremental append/expire bumps the touched shards'
        # versions, so stale entries miss lazily and only those shards
        # recompute.  (shard index, policy key) -> (version, int8 mask);
        # (shard index, binning key) -> (version, int64 bin indices);
        # (shard index, binning key, policy key) -> (version, (x, x_ns));
        # (binning key, policy key) -> (versions tuple, HistogramInput).
        # Keys come from _key(); _keyed tracks every live key in
        # insertion order — it pins identity-keyed objects (so CPython
        # cannot recycle an id into a stale hit) and is the LRU
        # eviction queue bounding total cache growth.
        self._mask_cache: dict[tuple, tuple[int, np.ndarray]] = {}
        self._index_cache: dict[tuple, tuple[int, np.ndarray]] = {}
        self._counts_cache: dict[tuple, tuple[int, tuple]] = {}
        self._hist_cache: dict[tuple, tuple[tuple, HistogramInput]] = {}
        self._keyed: dict[tuple, object] = {}
        # One reentrant lock guards every structure above *and* all
        # access to the sharded engine/executor (a worker pool's pipes
        # serve one fan-out at a time).  handle() holds it only for
        # histogram assembly — on a warm cache that is a dict lookup —
        # and samples the release outside it, so concurrent analysts
        # overlap the expensive part (see RpcServer's readers-writer
        # discipline on top).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def db(self) -> ShardedColumnarDatabase:
        return self._db

    @property
    def n_shards(self) -> int:
        return self._db.n_shards

    @property
    def budget_remaining(self) -> float | None:
        return self.accountant.remaining if self.accountant else None

    def budget_view(self) -> dict | None:
        """The full ledger document (the ``budget`` RPC op's payload):
        totals plus per-entry ``label``/``epsilon``/``policy``/
        ``analyst`` rows and per-analyst quota standing.  None when the
        server is unmetered."""
        if self.accountant is None:
            return None
        return self.accountant.view()

    # ------------------------------------------------------------------
    # Cached shard-level building blocks
    # ------------------------------------------------------------------
    def _key(self, obj: object) -> tuple:
        """The cache key of a policy/binning: value identity when possible.

        Objects exposing a non-None ``cache_key()`` (the algebra
        policies, the standard binnings) key by value, so equal objects
        deserialized per request share cache entries; opaque objects
        (predicate policies) key by ``id`` and are pinned.  Either way
        the key is registered in the LRU eviction queue.
        """
        value_key = getattr(obj, "cache_key", lambda: None)()
        key = ("v", value_key) if value_key is not None else ("id", id(obj))
        if key in self._keyed:
            # LRU touch: move to the back of the eviction queue, so a
            # hot key is never the one evicted when the limit is hit.
            self._keyed[key] = self._keyed.pop(key)
        else:
            if len(self._keyed) >= self.cache_limit:
                self._evict(next(iter(self._keyed)))
            self._keyed[key] = obj
        return key

    def _evict(self, key: tuple) -> None:
        """Drop one keyed object and every cache entry referencing it."""
        self._keyed.pop(key, None)
        for cache in (self._mask_cache, self._index_cache):
            for entry in [k for k in cache if k[1] == key]:
                del cache[entry]
        for entry in [k for k in self._counts_cache if key in k[1:]]:
            del self._counts_cache[entry]
        for entry in [k for k in self._hist_cache if key in k]:
            del self._hist_cache[entry]
        self.stats.evictions += 1

    def _per_shard(
        self, cache: dict, key: tuple, compute, hits: str, misses: str
    ) -> list:
        """Fetch or refresh a key's per-shard cache entries.

        Entries carry the shard version they were computed under; the
        stale subset (missing entries, or shards touched by an
        append/expire since) refills in one ``map_shards`` pass over
        just those shards, so an incremental update costs exactly the
        affected shards' recomputation.
        """
        versions = self._db.shard_versions
        stale = [
            i
            for i in range(self.n_shards)
            if cache.get((i, key), (None,))[0] != versions[i]
        ]
        setattr(
            self.stats, misses, getattr(self.stats, misses) + len(stale)
        )
        setattr(
            self.stats,
            hits,
            getattr(self.stats, hits) + self.n_shards - len(stale),
        )
        if stale:
            for i, value in zip(
                stale, self._db.map_shards(compute, indices=stale)
            ):
                cache[(i, key)] = (versions[i], value)
        return [cache[(i, key)][1] for i in range(self.n_shards)]

    def shard_masks(self, policy: Policy) -> list[np.ndarray]:
        """Per-shard policy masks, cached per ``(shard, policy key)``."""
        with self._lock:
            return self._per_shard(
                self._mask_cache,
                self._key(policy),
                policy.evaluate_batch,
                "mask_hits",
                "mask_misses",
            )

    def shard_bin_indices(self, binning) -> list[np.ndarray]:
        """Per-shard bin-index arrays, cached per ``(shard, binning key)``."""
        with self._lock:
            return self._per_shard(
                self._index_cache,
                self._key(binning),
                binning.bin_indices,
                "index_hits",
                "index_misses",
            )

    def _shard_counts(
        self, binning, policy: Policy, bkey: tuple, pkey: tuple
    ) -> list[tuple]:
        """Per-shard ``(x, x_ns)`` pairs, cached and version-checked.

        Two refill routes for the stale shards: with a shard-resident
        worker pool as the executor, the partial below travels as a
        pure spec request and only the O(bins) count pairs come back;
        otherwise the counts derive from the cached per-shard masks and
        bin indices (which themselves refresh only their stale shards).
        """
        versions = self._db.shard_versions
        cache = self._counts_cache
        stale = [
            i
            for i in range(self.n_shards)
            if cache.get((i, bkey, pkey), (None,))[0] != versions[i]
        ]
        if stale:
            if getattr(self._db.executor, "map_resident", None) is not None:
                pairs = self._db.map_shards(
                    functools.partial(
                        _shard_histogram_counts,
                        query=HistogramQuery(binning),
                        policy=policy,
                    ),
                    indices=stale,
                )
            else:
                n_bins = binning.n_bins
                masks = self.shard_masks(policy)
                indices = self.shard_bin_indices(binning)
                pairs = [
                    counts_from_mask(
                        indices[i], masks[i] == NON_SENSITIVE, n_bins
                    )
                    for i in stale
                ]
            for i, pair in zip(stale, pairs):
                cache[(i, bkey, pkey)] = (versions[i], pair)
        return [cache[(i, bkey, pkey)][1] for i in range(self.n_shards)]

    def histogram_input(
        self, binning, policy: Policy
    ) -> tuple[HistogramInput, bool]:
        """The merged ``(x, x_ns, mask)`` bundle and whether it was cached.

        Built from the cached (version-checked) per-shard count pairs;
        the merge is exact integer addition, so the result is
        bit-identical to
        :meth:`repro.queries.histogram.HistogramInput.from_columnar` on
        the same sharded database — including after incremental
        appends/expires, where only the touched shards recompute.
        """
        with self._lock:
            bkey, pkey = self._key(binning), self._key(policy)
            key = (bkey, pkey)
            versions = self._db.shard_versions
            cached = self._hist_cache.get(key)
            if cached is not None and cached[0] == versions:
                self.stats.hist_hits += 1
                return cached[1], True
            self.stats.hist_misses += 1
            hist = HistogramInput.from_shard_counts(
                self._shard_counts(binning, policy, bkey, pkey)
            )
            hist.ns_support_sorted  # warm the release fast-path views
            self._hist_cache[key] = (versions, hist)
            return hist, False

    def histogram_counts(
        self, binning, policy
    ) -> tuple[np.ndarray, np.ndarray]:
        """This server's merged ``(x, x_ns)`` int64 count pair.

        The cluster-tier building block: a coordinator holding several
        of these servers (each owning a disjoint shard range) sums the
        pairs — plain int64 addition, the same merge
        :meth:`HistogramInput.from_shard_counts` performs over local
        shards — and samples noise once at the merge tier, so a
        clustered release stays bit-identical to a single server
        holding all the shards.  Accepts live binning/policy objects or
        their wire specs.
        """
        if isinstance(binning, Mapping):
            binning = binning_from_spec(binning)
        if isinstance(policy, Mapping):
            policy = policy_from_spec(policy)
        hist, _ = self.histogram_input(binning, policy)
        return np.asarray(hist.x), np.asarray(hist.x_ns)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve(request: ReleaseRequest) -> tuple[object, Policy]:
        """Materialize a request's binning/policy from wire specs.

        A dict-shaped ``policy``/``binning`` is what a transport
        delivers; resolution goes through the spec loaders, and the
        resulting objects still share cache entries with their live
        twins via ``cache_key()`` value identity.
        """
        binning, policy = request.binning, request.policy
        if isinstance(binning, Mapping):
            binning = binning_from_spec(binning)
        if isinstance(policy, Mapping):
            policy = policy_from_spec(policy)
        return binning, policy

    def handle(self, request: ReleaseRequest) -> ReleaseResponse:
        """Serve one request: cache-assisted histogram, charge, release."""
        if request.n_trials < 1:
            raise ValueError("n_trials must be at least 1")
        binning, policy = self._resolve(request)
        hist, cache_hit = self.histogram_input(binning, policy)
        mechanism = self._registry.create(request.mechanism, request.epsilon)
        accountant = self.accountant
        if accountant is not None and request.analyst:
            # Bind the charge to the request's credential: quota'd
            # analysts are checked against their sub-budget atomically
            # with the global check.
            accountant = accountant.for_analyst(request.analyst)
        # `run` on the cache-assembled input: the ledger records the
        # policy whose x_ns the mechanism consumed (DP mechanisms
        # charge under P_all per Lemma 3.1) — the composition theorem
        # (Theorem 3.3) folds the entries into the minimum relaxation.
        estimates = mechanism.run(
            hist,
            np.random.default_rng(request.seed),
            n_trials=request.n_trials,
            policy=policy,
            accountant=accountant,
            label=request.label or request.mechanism,
        )
        with self._lock:
            self.stats.requests += 1
        return ReleaseResponse(
            request=request,
            estimates=estimates,
            epsilon_spent=request.epsilon,
            budget_remaining=self.budget_remaining,
            cache_hit=cache_hit,
        )

    def handle_batch(
        self, requests: Sequence[ReleaseRequest]
    ) -> list[ReleaseResponse]:
        """Serve a traffic batch in order.

        Requests sharing a ``(binning, policy)`` pair hit the histogram
        cache after the first.  Malformed requests (unknown mechanism,
        bad trial count, non-positive epsilon) are rejected up front,
        before *any* request is charged — budget must never be spent on
        a batch that was doomed by a typo.  The accountant then sees
        every request; when one overruns the budget, the
        already-charged prefix must not be lost, so the failure is
        re-raised as :class:`BatchBudgetExceededError` carrying those
        responses.
        """
        for request in requests:
            if request.mechanism not in self._registry:
                raise KeyError(
                    f"unknown mechanism {request.mechanism!r}; registered: "
                    f"{self._registry.names()}"
                )
            if request.n_trials < 1:
                raise ValueError("n_trials must be at least 1")
            if request.epsilon <= 0:
                raise ValueError("epsilon must be positive")
        responses: list[ReleaseResponse] = []
        for request in requests:
            try:
                responses.append(self.handle(request))
            except BudgetExceededError as exc:
                raise BatchBudgetExceededError(
                    str(exc), responses, request
                ) from exc
        return responses

    def query_true_histogram(self, query: HistogramQuery) -> np.ndarray:
        """The exact (non-private) histogram — for offline error audits."""
        with self._lock:
            return self._db.histogram(query.binning, query.n_bins)

    def true_histogram(self, binning) -> np.ndarray:
        """The exact histogram for a binning object *or* its wire spec.

        The transport-facing twin of :meth:`query_true_histogram`: the
        curator-side audit endpoint every backend (in-process, sharded,
        remote) exposes through :class:`repro.api.OsdpClient`.
        """
        if isinstance(binning, Mapping):
            binning = binning_from_spec(binning)
        with self._lock:
            return self._db.histogram(binning, binning.n_bins)

    # ------------------------------------------------------------------
    # Incremental data updates
    # ------------------------------------------------------------------
    def append_records(self, records) -> int:
        """Ingest new records without a reslice; returns the tail shard index.

        Delegates to
        :meth:`repro.data.sharding.ShardedColumnarDatabase.append_records`
        (which forwards only the chunk to a shard-resident worker
        pool).  No cache is cleared here: the tail shard's version bump
        makes exactly its entries miss on the next request, while every
        other shard's cached masks, indices and counts keep serving —
        the merged histograms are bit-identical to a from-scratch
        rebuild over the extended data.

        Appending changes the database the privacy ledger describes;
        as in the paper's continual-observation setting, the accountant
        keeps charging cumulatively — budget never resets on ingest.
        """
        with self._lock:
            return self._db.append_records(records)

    def expire_prefix(self, n_records: int) -> list[int]:
        """Drop the ``n_records`` oldest records (retention enforcement).

        Only the leading shards' versions bump; their cache entries
        miss lazily and everything else keeps serving.  Returns the
        touched shard indices.
        """
        with self._lock:
            return self._db.expire_prefix(n_records)

    def replace_database(self, db) -> None:
        """Swap in a whole new database state (WAL recovery / resync).

        Unlike the incremental paths above, this discards every cached
        shard artifact: the fresh sharded database restarts its shard
        versions at zero, so stale entries keyed under the old
        versions could otherwise collide with them.  Refused while an
        executor is attached — resident workers hold the old columns
        and would keep answering from them.
        """
        if self._db.executor is not None:
            raise RuntimeError(
                "cannot replace the database while a worker executor is "
                "attached; resident workers still hold the old columns"
            )
        if not isinstance(db, ShardedColumnarDatabase):
            if not isinstance(db, ColumnarDatabase):
                db = ColumnarDatabase.from_database(db)
            db = db.shard(self._db.n_shards)
        with self._lock:
            self._db = db
            self._mask_cache.clear()
            self._index_cache.clear()
            self._counts_cache.clear()
            self._hist_cache.clear()
            self._keyed.clear()
