"""Crash-safe privacy budget: the durable accountant ledger.

The entire OSDP guarantee rests on Theorem 3.3 sequential composition:
the system may never release more than the composed epsilon.  A purely
in-memory :class:`repro.core.accountant.PrivacyAccountant` silently
resets ``spent`` to zero on any restart — an unrepairable privacy
violation (an audit can lower-bound leakage after the fact; it cannot
un-release noise).  :class:`DurableAccountant` closes that hole with an
append-only **charge journal** in the PR-8 WAL frame format
(``[u32 length][u32 crc32][blob]``, snapshot compaction, torn-tail
handling — see :mod:`repro.service.wal`), with one deliberate
inversion:

* A data WAL *truncates* its torn tail: the interrupted entry was
  never acked, so dropping it is correct.
* The charge journal **counts** its torn tail: a charge is journaled
  and fsync'd *before* the noisy release is returned, so a torn frame
  means the crash landed inside the charge protocol — the release may
  or may not have escaped.  Wasting epsilon is safe; resurrecting it
  is a privacy violation, so recovery charges the torn entry anyway.

To make a torn frame chargeable, every blob leads with its epsilon as
8 raw big-endian float bytes *before* the wire-codec document — the
one field recovery must salvage from a frame whose CRC no longer
holds.  If even those bytes are unreadable, recovery charges the
**entire remaining budget** (the maximal safe assumption) and labels
the entry so operators can see what happened.  Either way the
salvaged charge is re-journaled as a clean frame, so a second restart
counts it exactly once.

Ledger entries serialize their policies via the PR-3 spec codec
(:func:`repro.core.policy_language.policy_to_spec`), so recovery
rebuilds the *exact* composed guarantee — same minimum-relaxation
policy, bit-identical epsilon.  Opaque policies (hand-written
predicates) have no spec; they are journaled as ``policy: None`` and
recovered as the conservative :class:`~repro.core.policy.AllSensitivePolicy`
placeholder (claiming less relaxation than the original is always
sound).

Fsync contract, in charge order (all under the accountant's one lock):

1. affordability check (global budget *and* the analyst's quota);
2. journal append — write, flush, ``fsync`` — **before** any caller
   sees success;
3. in-memory ledger append;
4. snapshot compaction every ``snapshot_every`` charges (tmp file +
   fsync + atomic rename + directory fsync, then log truncation), so
   recovery cost stays bounded.
"""

from __future__ import annotations

import math
import os
import struct
import zlib

from repro.core.accountant import (
    AnalystAccountant,
    LedgerEntry,
    PrivacyAccountant,
)
from repro.core.policy import AllSensitivePolicy, Policy
from repro.core.policy_language import (
    PolicySpecError,
    policy_from_spec,
    policy_to_spec,
)
from repro.service.wal import _ENTRY_PREFIX, _decode_blob, _frame

#: The journaled charge's epsilon, redundantly leading the blob as raw
#: float bytes — the field a torn-tail recovery salvages.
_EPSILON_PREFIX = struct.Struct(">d")

#: Label of a synthetic charge recovered from a torn journal tail.
TORN_TAIL_LABEL = "torn-tail"
#: Label when not even the torn tail's epsilon bytes were readable and
#: the whole remaining budget was charged instead.
TORN_TAIL_UNREADABLE_LABEL = "torn-tail(unreadable)"


class BudgetJournalError(RuntimeError):
    """A corrupt journal structure the budget cannot be rebuilt from."""


def entry_to_doc(seq: int, entry: LedgerEntry) -> dict:
    """One ledger entry as its wire-safe journal document."""
    try:
        spec = policy_to_spec(entry.policy)
    except PolicySpecError:
        # No declarative form — the name survives for the operator
        # view; recovery substitutes the conservative placeholder.
        spec = None
    return {
        "seq": int(seq),
        "epsilon": float(entry.epsilon),
        "label": str(entry.label),
        "analyst": str(entry.analyst),
        "policy": spec,
        "policy_name": str(entry.policy.name),
    }


def entry_from_doc(doc) -> LedgerEntry:
    """Rebuild a ledger entry from its journal document."""
    spec = doc.get("policy")
    if spec is None:
        policy: Policy = AllSensitivePolicy()
    else:
        policy = policy_from_spec(spec)
    return LedgerEntry(
        policy=policy,
        epsilon=float(doc["epsilon"]),
        label=str(doc.get("label", "")),
        analyst=str(doc.get("analyst", "")),
    )


def _entry_blob(doc: dict) -> bytes:
    from repro.api.wire import encode_message

    return _EPSILON_PREFIX.pack(float(doc["epsilon"])) + encode_message(doc)


def _blob_doc(blob: bytes) -> dict:
    return _decode_blob(blob[_EPSILON_PREFIX.size :])


class ChargeJournal:
    """The on-disk half of :class:`DurableAccountant`.

    ``budget.log`` holds framed charge entries, fsync'd per append;
    ``budget_snapshot.bin`` holds the full ledger as of its
    ``last_seq`` (atomically replaced).  Not internally locked — every
    call happens under the owning accountant's lock.
    """

    LOG_NAME = "budget.log"
    SNAPSHOT_NAME = "budget_snapshot.bin"

    def __init__(self, directory, snapshot_every: int = 256):
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._log_path = os.path.join(self.directory, self.LOG_NAME)
        self._snapshot_path = os.path.join(self.directory, self.SNAPSHOT_NAME)
        self.snapshot_every = snapshot_every
        #: The highest sequence number journaled (0 = nothing yet).
        self.last_seq = 0
        #: Entries at or below this seq live only in the snapshot.
        self.snapshot_seq = 0
        #: Every live entry's journal document, snapshot + log — the
        #: compaction source (re-serializing live Policy objects at
        #: snapshot time could fail; the docs cannot).
        self._docs: list[dict] = []
        self._log_entries = 0
        self._log_file = None

    # -- appending ------------------------------------------------------
    def append_entry(self, entry: LedgerEntry) -> int:
        """Durably journal one charge; returns its sequence number.

        The write is flushed and fsync'd before this returns — the
        fsync-before-ack contract: no caller (and no analyst) observes
        a charge that a crash could silently forget.
        """
        seq = self.last_seq + 1
        doc = entry_to_doc(seq, entry)
        handle = self._ensure_log_open()
        handle.write(_frame(_entry_blob(doc)))
        handle.flush()
        os.fsync(handle.fileno())
        self.last_seq = seq
        self._docs.append(doc)
        self._log_entries += 1
        return seq

    def maybe_compact(self) -> bool:
        if self._log_entries < self.snapshot_every:
            return False
        self.compact()
        return True

    def compact(self) -> None:
        """Snapshot the full ledger and truncate the log."""
        doc = {"last_seq": self.last_seq, "entries": list(self._docs)}
        from repro.api.wire import encode_message

        tmp_path = self._snapshot_path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(_frame(encode_message(doc)))
            handle.flush()
            os.fsync(handle.fileno())
        # Atomic replace: a crash leaves either the old snapshot or
        # the new one, never a half-written file under the real name.
        os.replace(tmp_path, self._snapshot_path)
        self._fsync_directory()
        self.snapshot_seq = self.last_seq
        self._truncate_log()
        self._log_entries = 0

    # -- recovery -------------------------------------------------------
    def recover(self) -> tuple[list[dict], dict]:
        """Load the journal; returns ``(entry docs, report)``.

        The report's ``torn_bytes``/``torn_epsilon`` describe a torn
        tail when one was found: the owning accountant must *charge*
        it (``torn_epsilon`` is None when not even the epsilon bytes
        were salvageable — charge the whole remaining budget).  The
        torn bytes are truncated from disk here; the caller re-journals
        the salvaged charge as a clean frame via :meth:`append_entry`.
        """
        report = {
            "snapshot_seq": 0,
            "replayed": 0,
            "torn_bytes": 0,
            "torn_epsilon": None,
        }
        snapshot = self._read_snapshot()
        if snapshot is not None:
            self._docs = [dict(d) for d in snapshot.get("entries") or []]
            self.last_seq = self.snapshot_seq = int(snapshot["last_seq"])
            report["snapshot_seq"] = self.snapshot_seq
        docs, good_bytes, total_bytes = self._read_log()
        for doc in docs:
            seq = int(doc["seq"])
            if seq <= self.snapshot_seq:
                # A crash between snapshot rename and log truncation
                # leaves entries the snapshot already contains.
                continue
            if seq != self.last_seq + 1:
                raise BudgetJournalError(
                    f"budget journal {self._log_path} has a sequence "
                    f"gap: entry {seq} follows {self.last_seq}; charges "
                    "are missing and the spent budget cannot be trusted"
                )
            self._docs.append(doc)
            self.last_seq = seq
            self._log_entries += 1
            report["replayed"] += 1
        if good_bytes < total_bytes:
            report["torn_bytes"] = total_bytes - good_bytes
            report["torn_epsilon"] = self._salvage_epsilon(good_bytes)
            self._close_log()
            with open(self._log_path, "r+b") as handle:
                handle.truncate(good_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        return list(self._docs), report

    def _salvage_epsilon(self, good_bytes: int) -> float | None:
        """The torn tail's epsilon, from its raw leading float bytes.

        Only a finite positive value is trusted; anything else returns
        None and the caller assumes the worst (full remaining budget).
        """
        with open(self._log_path, "rb") as handle:
            handle.seek(good_bytes)
            tail = handle.read()
        body = tail[_ENTRY_PREFIX.size :]
        if len(body) < _EPSILON_PREFIX.size:
            return None
        (epsilon,) = _EPSILON_PREFIX.unpack_from(body, 0)
        if not math.isfinite(epsilon) or epsilon <= 0:
            return None
        return float(epsilon)

    def _read_snapshot(self) -> dict | None:
        try:
            with open(self._snapshot_path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        if len(data) < _ENTRY_PREFIX.size:
            raise BudgetJournalError(
                f"budget snapshot {self._snapshot_path} is truncated"
            )
        length, crc = _ENTRY_PREFIX.unpack_from(data, 0)
        blob = data[_ENTRY_PREFIX.size : _ENTRY_PREFIX.size + length]
        if len(blob) != length or zlib.crc32(blob) != crc:
            # Serving with a reset ledger would be a privacy violation;
            # refuse loudly instead.
            raise BudgetJournalError(
                f"budget snapshot {self._snapshot_path} fails its "
                "integrity check; the spent budget cannot be "
                "reconstructed from it"
            )
        from repro.api.wire import WireError

        try:
            return _decode_blob(blob)
        except (WireError, EOFError) as exc:
            raise BudgetJournalError(
                f"budget snapshot {self._snapshot_path} does not "
                f"decode: {exc}"
            ) from exc

    def _read_log(self) -> tuple[list[dict], int, int]:
        """Parse the log; returns ``(docs, good_bytes, total_bytes)``.

        Parsing stops at the first frame failing its length or CRC
        check — everything after an interrupted write is the torn tail
        the *accountant* must charge, not replay.
        """
        from repro.api.wire import WireError

        try:
            with open(self._log_path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return [], 0, 0
        docs, pos = [], 0
        while pos + _ENTRY_PREFIX.size <= len(data):
            length, crc = _ENTRY_PREFIX.unpack_from(data, pos)
            end = pos + _ENTRY_PREFIX.size + length
            if end > len(data):
                break  # torn tail
            blob = data[pos + _ENTRY_PREFIX.size : end]
            if zlib.crc32(blob) != crc:
                break
            try:
                docs.append(_blob_doc(blob))
            except (WireError, EOFError):
                break
            pos = end
        return docs, pos, len(data)

    # -- plumbing -------------------------------------------------------
    def _ensure_log_open(self):
        if self._log_file is None:
            self._log_file = open(self._log_path, "ab")
        return self._log_file

    def _truncate_log(self) -> None:
        self._close_log()
        with open(self._log_path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _close_log(self) -> None:
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None

    def close(self) -> None:
        self._close_log()

    def __enter__(self) -> "ChargeJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class DurableAccountant:
    """A :class:`PrivacyAccountant` whose ledger survives SIGKILL.

    Drop-in wherever an accountant is accepted (``ReleaseServer``,
    ``ClusterBackend``, the mechanisms' ``charge`` helpers): same
    ``charge``/``remaining``/``ledger``/``composed_guarantee`` surface,
    same atomicity, same quota semantics — plus the fsync'd charge
    journal described in the module docstring.  Construction recovers
    the journal immediately (there is deliberately no way to open a
    journal without replaying it — forgetting recovery *is* the bug
    this class exists to prevent); the replay report is kept at
    :attr:`recovery`.
    """

    def __init__(
        self,
        directory,
        total_epsilon: float,
        quotas=None,
        snapshot_every: int = 256,
    ):
        self._inner = PrivacyAccountant(
            total_epsilon=total_epsilon, quotas=quotas
        )
        self._journal = ChargeJournal(directory, snapshot_every=snapshot_every)
        self.recovery = self._recover()

    def _recover(self) -> dict:
        docs, report = self._journal.recover()
        with self._inner._lock:
            for doc in docs:
                # History is history: recovered charges install
                # unchecked, so a ledger standing above total_epsilon
                # (e.g. after a torn-tail worst-case charge) refuses
                # further charges instead of erroring here.
                self._inner._append_entry(entry_from_doc(doc))
            torn_entry = self._torn_entry(report)
            if torn_entry is not None:
                # Re-journal the salvaged charge as a clean frame so a
                # second restart counts it exactly once.
                self._journal.append_entry(torn_entry)
                self._inner._append_entry(torn_entry)
        report["spent"] = self.spent
        report["remaining"] = self.remaining
        return report

    def _torn_entry(self, report: dict) -> LedgerEntry | None:
        """The synthetic charge a torn journal tail turns into."""
        if not report["torn_bytes"]:
            return None
        epsilon = report["torn_epsilon"]
        if epsilon is not None:
            return LedgerEntry(
                policy=AllSensitivePolicy(),
                epsilon=float(epsilon),
                label=TORN_TAIL_LABEL,
            )
        # Epsilon unreadable: the maximal safe assumption is that the
        # torn charge consumed everything still standing.
        remaining = max(0.0, self._inner.total_epsilon - self._inner.spent)
        if remaining <= 0:
            return None
        return LedgerEntry(
            policy=AllSensitivePolicy(),
            epsilon=remaining,
            label=TORN_TAIL_UNREADABLE_LABEL,
        )

    # -- the accountant surface ----------------------------------------
    def charge(
        self,
        policy: Policy,
        epsilon: float,
        label: str = "",
        analyst: str = "",
    ) -> None:
        """Check, journal (fsync), then append — atomically.

        The journal write sits between the affordability check and the
        in-memory append, all under the inner accountant's lock: by the
        time any caller can observe the charge (let alone receive the
        noisy release), it is on stable storage.
        """
        if epsilon <= 0:
            raise ValueError("epsilon charge must be positive")
        with self._inner._lock:
            self._inner._check_charge(epsilon, analyst)
            entry = LedgerEntry(
                policy=policy,
                epsilon=float(epsilon),
                label=label,
                analyst=str(analyst),
            )
            self._journal.append_entry(entry)
            self._inner._append_entry(entry)
            self._journal.maybe_compact()

    @property
    def total_epsilon(self) -> float:
        return self._inner.total_epsilon

    @property
    def quotas(self) -> dict:
        return self._inner.quotas

    @property
    def spent(self) -> float:
        return self._inner.spent

    @property
    def remaining(self) -> float:
        return self._inner.remaining

    @property
    def ledger(self):
        return self._inner.ledger

    @property
    def journal(self) -> ChargeJournal:
        return self._journal

    def spent_by(self, analyst: str) -> float:
        return self._inner.spent_by(analyst)

    def quota_remaining(self, analyst: str) -> float | None:
        return self._inner.quota_remaining(analyst)

    def for_analyst(self, analyst: str | None):
        if not analyst:
            return self
        return AnalystAccountant(self, str(analyst))

    def composed_guarantee(self):
        return self._inner.composed_guarantee()

    def view(self) -> dict:
        return self._inner.view()

    def summary(self) -> str:
        return self._inner.summary()

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "DurableAccountant":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
