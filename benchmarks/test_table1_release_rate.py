"""Table 1: % of non-sensitive records released by OsdpRR vs epsilon.

Paper row: eps 1.0 -> ~63%, eps 0.5 -> ~39%, eps 0.1 -> ~9.5%.
"""

from conftest import write_result

from repro.evaluation.experiments.table1 import (
    PAPER_EPSILONS,
    expected_release_percentages,
    monte_carlo_release_percentages,
)
from repro.evaluation.runner import format_table

PAPER_VALUES = {1.0: 63.0, 0.5: 39.0, 0.1: 9.5}


def run_table1():
    analytic = expected_release_percentages()
    measured = monte_carlo_release_percentages(n_records=50_000, n_trials=5)
    return analytic, measured


def test_table1_release_rates(benchmark):
    analytic, measured = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = [
        [eps, PAPER_VALUES[eps], analytic[eps], measured[eps]]
        for eps in PAPER_EPSILONS
    ]
    write_result(
        "table1_release_rate",
        format_table(
            ["epsilon", "paper %", "analytic %", "measured %"], rows
        ),
    )
    for eps in PAPER_EPSILONS:
        assert abs(analytic[eps] - PAPER_VALUES[eps]) < 1.0
        assert abs(measured[eps] - analytic[eps]) < 1.0
