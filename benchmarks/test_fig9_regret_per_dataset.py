"""Fig 9: per-dataset MRE-regret (Close policy, rho in {0.99, 0.5}).

Paper shape: the sparser the dataset the larger OSDP's advantage (up to
25x on Adult, the sparsest); the gap narrows as density grows (Patent);
sorted Nettrace favors DAWA's partitioning.
"""

from conftest import write_result

from repro.data.dpbench import DPBENCH_SPECS
from repro.evaluation.experiments.fig6_10_dpbench import aggregate_regret
from repro.evaluation.runner import format_table

SHOWN = ("osdp_laplace_l1", "dawaz", "dawa")


def test_fig9_per_dataset_regret(benchmark, dpbench_records):
    def aggregate():
        return {
            rho: aggregate_regret(
                dpbench_records,
                group_by="dataset",
                where={"policy": "close", "epsilon": 1.0, "rho": rho},
            )
            for rho in (0.99, 0.50)
        }

    tables = benchmark.pedantic(aggregate, rounds=1, iterations=1)
    for rho, by_dataset in tables.items():
        ordered = sorted(
            by_dataset, key=lambda d: -DPBENCH_SPECS[d].sparsity
        )
        rows = [
            [name, DPBENCH_SPECS[name].sparsity]
            + [by_dataset[name][a] for a in SHOWN]
            for name in ordered
        ]
        write_result(
            f"fig9_per_dataset_rho{rho:g}",
            format_table(["dataset", "sparsity", *SHOWN], rows),
        )

    at_99 = tables[0.99]
    # Shape 1: on the sparsest dataset, DAWA pays a large regret at
    # rho = 0.99 (the paper's 25x-42x annotations).
    assert at_99["adult"]["dawa"] > 10 * at_99["adult"]["osdp_laplace_l1"]
    # Shape 2: the OSDP-vs-DAWA gap shrinks as sparsity drops.
    gap_sparse = at_99["adult"]["dawa"] / at_99["adult"]["osdp_laplace_l1"]
    gap_dense = at_99["patent"]["dawa"] / at_99["patent"]["osdp_laplace_l1"]
    assert gap_dense < gap_sparse
