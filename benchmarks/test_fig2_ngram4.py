"""Fig 2: MRE of private 4-gram histograms.

Paper shape: All NS <= OsdpRR with a modest gap; the optimal truncation
for the Laplace baselines is k* = 1; at eps = 0.01 the Laplace
mechanisms are orders of magnitude worse than OsdpRR.
"""

from conftest import BENCH_TIPPERS, write_result

from repro.evaluation.experiments.fig2_3_ngrams import (
    NGramConfig,
    run_ngram_experiment,
)
from repro.evaluation.runner import format_table

CONFIG = NGramConfig(
    tippers=BENCH_TIPPERS,
    n=4,
    policies=(99, 90, 75, 50, 25, 10, 1),
    epsilons=(1.0, 0.01),
    truncation_sweep=(1, 2, 3, 5),
    n_trials=5,
)

ALGOS = ("all_ns", "osdp_rr", "lm_t1", "lm_tstar")


def check_shapes(out, config):
    for eps in config.epsilons:
        for rho in config.policies:
            row = out["mre"][eps][rho]
            assert row["all_ns"] <= row["osdp_rr"] + 1e-9
    # Paper: k* = 1 for the 4/5-gram tasks.
    assert out["lm_kstar"][1.0] == 1
    # Order-of-magnitude gap at eps = 0.01 (§6.3.2).
    row = out["mre"][0.01][50]
    assert row["lm_t1"] > 10 * row["osdp_rr"]


def test_fig2_four_grams(benchmark):
    out = benchmark.pedantic(
        run_ngram_experiment, args=(CONFIG,), rounds=1, iterations=1
    )
    for eps in CONFIG.epsilons:
        rows = [
            [f"P{rho:g}"] + [out["mre"][eps][rho][a] for a in ALGOS]
            for rho in CONFIG.policies
        ]
        write_result(
            f"fig2_ngram4_eps{eps:g}",
            format_table(["policy", *ALGOS], rows),
        )
    check_shapes(out, CONFIG)
