"""Price of budget durability: fsync'd charges vs in-memory charges.

The durable accountant fsyncs every charge journal frame before the
release returns (the fsync-before-ack contract in
:mod:`repro.service.budget`).  This bench measures charges/second for
the in-memory :class:`~repro.core.accountant.PrivacyAccountant`
against the :class:`~repro.service.budget.DurableAccountant` on the
same charge stream, and records the slowdown factor — the dollar cost
of crash-safety operators are buying.

The tier-1 assertion is correctness-only (both ledgers identical).
The wall-clock bar lives in the ``bench_regression`` lane and is
deliberately generous: an fsync per charge is storage-speed-bound
(journaled filesystems, VM disks), so the bar catches a pathological
regression (e.g. an accidental journal rewrite per charge, compaction
in the hot loop), not device variance.
"""

from __future__ import annotations

import tempfile
import time

import pytest
from conftest import write_result

from repro.core.accountant import PrivacyAccountant
from repro.core.policy import OptInPolicy
from repro.evaluation.runner import format_table
from repro.service.budget import DurableAccountant

N_CHARGES = 400
TOTAL = 1e9
# fsync latency spans ~0.05ms (NVMe) to ~10ms (spinning/virtualized
# disks): even the slow end leaves >100 charges/sec absolute; the
# relative bar only has to catch work that is not one-fsync-per-charge.
MIN_DURABLE_CHARGES_PER_SEC = 25.0


def _charge_stream(accountant) -> float:
    policy = OptInPolicy()
    accountant.charge(policy, 0.001, label="warm")  # open files, warm caches
    start = time.perf_counter()
    for i in range(N_CHARGES):
        accountant.charge(policy, 0.001, label=f"c{i}", analyst="bench")
    return time.perf_counter() - start


def _measure() -> tuple[float, float, int, int]:
    memory = PrivacyAccountant(total_epsilon=TOTAL)
    memory_s = _charge_stream(memory)
    with tempfile.TemporaryDirectory() as directory:
        with DurableAccountant(directory, total_epsilon=TOTAL) as durable:
            durable_s = _charge_stream(durable)
            n_durable = len(durable.ledger)
    return memory_s, durable_s, len(memory.ledger), n_durable


def _report(memory_s: float, durable_s: float) -> str:
    memory_rate = N_CHARGES / memory_s
    durable_rate = N_CHARGES / durable_s
    table = format_table(
        ["accountant", "charges_per_sec", "us_per_charge", "slowdown"],
        [
            [
                "in_memory",
                f"{memory_rate:.0f}",
                f"{memory_s / N_CHARGES * 1e6:.1f}",
                "1.00",
            ],
            [
                "durable_fsync",
                f"{durable_rate:.0f}",
                f"{durable_s / N_CHARGES * 1e6:.1f}",
                f"{durable_s / memory_s:.2f}",
            ],
        ],
    )
    write_result("budget_overhead", table)
    return table


def test_durable_ledger_matches_in_memory_ledger():
    memory_s, durable_s, n_memory, n_durable = _measure()
    _report(memory_s, durable_s)
    assert n_memory == n_durable == N_CHARGES + 1


@pytest.mark.bench_regression
def test_durable_charge_rate_above_floor():
    memory_s, durable_s, _, _ = _measure()
    _report(memory_s, durable_s)
    rate = N_CHARGES / durable_s
    assert rate >= MIN_DURABLE_CHARGES_PER_SEC, (
        f"durable accountant served {rate:.1f} charges/sec, below the "
        f"{MIN_DURABLE_CHARGES_PER_SEC}/sec floor — is something "
        "heavier than one fsync'd frame append on the charge path?"
    )
