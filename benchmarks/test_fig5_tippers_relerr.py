"""Fig 5: median (Rel50) and tail (Rel95) per-bin error, TIPPERS, eps = 1.

Paper shape: OSDP algorithms offer their largest improvements on the
high-error bins (Rel95); OsdpLaplaceL1 outperforms DAWAz on this
value-based policy because bins are purely sensitive or purely
non-sensitive (§6.3.3.1).
"""

from conftest import BENCH_TIPPERS, write_result

from repro.evaluation.experiments.fig4_5_tippers import (
    ALGORITHMS,
    TippersHistogramConfig,
    run_tippers_histogram,
)
from repro.evaluation.runner import format_table

CONFIG = TippersHistogramConfig(
    tippers=BENCH_TIPPERS,
    policies=(99, 90, 75, 50, 25),
    epsilons=(1.0,),
    n_trials=5,
)


def test_fig5_tippers_per_bin_error(benchmark):
    out = benchmark.pedantic(
        run_tippers_histogram, args=(CONFIG,), rounds=1, iterations=1
    )
    for metric in ("rel50", "rel95"):
        rows = [
            [f"P{rho:g}"] + [out[metric][rho][a] for a in ALGORITHMS]
            for rho in CONFIG.policies
        ]
        write_result(
            f"fig5_tippers_{metric}",
            format_table(["policy", *ALGORITHMS], rows),
        )
    # Shape 1: OSDP beats DAWA on the tail error for permissive policies.
    assert out["rel95"][99]["osdp_laplace_l1"] < out["rel95"][99]["dawa"]
    assert out["rel95"][90]["dawaz"] < out["rel95"][90]["dawa"] * 1.2
    # Shape 2: median error of OSDP algorithms is no worse than DAWA's
    # at the most permissive policy.
    assert out["rel50"][99]["osdp_laplace_l1"] <= out["rel50"][99]["dawa"] + 0.05
