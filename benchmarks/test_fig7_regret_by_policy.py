"""Fig 7: MRE-regret by ratio, split by Close/Far policy, eps = 1.

Paper shape: for Close policies OSDP algorithms beat DAWA at every
ratio >= 0.25 (paper: DAWAz < 2x optimal on average vs ~6x for DAWA);
for Far policies the pure OSDP primitive collapses (annotations of
18-45x in the paper) while DAWAz still beats DAWA everywhere.
"""

from conftest import write_result

from repro.evaluation.experiments.fig6_10_dpbench import (
    aggregate_regret,
    overall_average_regret,
)
from repro.evaluation.runner import format_table

SHOWN = ("osdp_laplace_l1", "dawaz", "dawa")
RATIOS = (0.99, 0.75, 0.50, 0.25)


def test_fig7_regret_by_policy(benchmark, dpbench_records):
    def aggregate():
        return {
            policy: {
                "by_rho": aggregate_regret(
                    dpbench_records,
                    group_by="rho",
                    where={"policy": policy, "epsilon": 1.0},
                ),
                "avg": overall_average_regret(
                    dpbench_records, where={"policy": policy, "epsilon": 1.0}
                ),
            }
            for policy in ("close", "far")
        }

    tables = benchmark.pedantic(aggregate, rounds=1, iterations=1)
    for policy, data in tables.items():
        rows = [["Avg"] + [data["avg"][a] for a in SHOWN]]
        for rho in sorted(data["by_rho"], reverse=True):
            rows.append([rho] + [data["by_rho"][rho][a] for a in SHOWN])
        write_result(
            f"fig7_regret_{policy}",
            format_table(["rho_x", *SHOWN], rows),
        )

    close = tables["close"]["by_rho"]
    far = tables["far"]["by_rho"]
    # Shape 1: Close, high ratios -> OSDP beats DAWA.
    for rho in (0.99, 0.75, 0.50):
        assert close[rho]["osdp_laplace_l1"] < close[rho]["dawa"]
    # Shape 2: Far -> the pure OSDP primitive collapses vs its Close self.
    assert far[0.75]["osdp_laplace_l1"] > 3 * close[0.75]["osdp_laplace_l1"]
    # Shape 3: DAWAz beats DAWA on Far policies at every ratio (the
    # paper's headline for the recipe).
    for rho in RATIOS:
        assert far[rho]["dawaz"] < far[rho]["dawa"]
