"""Ablation benches for the design choices called out in DESIGN.md §6.

1. DAWAz budget split rho (paper fixes 0.1);
2. zero-set detector inside DAWAz (OsdpRR vs OsdpLaplaceL1);
3. OsdpRR histogram inverse-retention scaling;
4. OsdpLaplaceL1 median de-biasing (Algorithm 2 step 4);
5. DAWA partition penalty factor.
"""

import numpy as np
from conftest import write_result

from repro.data.dpbench import generate_dpbench
from repro.data.sampling import m_sampling
from repro.evaluation.metrics import mean_relative_error
from repro.evaluation.runner import format_table, spawn_rngs
from repro.mechanisms.dawa import Dawa
from repro.mechanisms.dawaz import DawaZ
from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram
from repro.mechanisms.osdp_rr import OsdpRRHistogram
from repro.queries.histogram import HistogramInput

EPSILON = 1.0
N_TRIALS = 5


def _input(dataset: str, rho: float, seed: int = 0) -> HistogramInput:
    x = generate_dpbench(dataset, seed=seed).astype(float)
    x_ns = m_sampling(x, rho, np.random.default_rng(seed)).x_ns.astype(float)
    return HistogramInput(x=x, x_ns=x_ns)


def _avg_mre(mechanism, hist, seed=0, trials=N_TRIALS):
    return float(
        np.mean(
            [
                mean_relative_error(hist.x, mechanism.release(hist, rng))
                for rng in spawn_rngs(seed, trials)
            ]
        )
    )


def test_ablation_dawaz_rho(benchmark):
    """Sweep the zero-detection budget fraction around the paper's 0.1."""
    hist = _input("adult", rho=0.75)

    def sweep():
        return {
            rho: _avg_mre(DawaZ(EPSILON, rho=rho), hist)
            for rho in (0.02, 0.05, 0.1, 0.25, 0.5, 0.8)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[rho, mre] for rho, mre in results.items()]
    write_result("ablation_dawaz_rho", format_table(["rho", "MRE"], rows))
    # Extreme budget splits should not beat the paper's neighborhood.
    best = min(results, key=results.__getitem__)
    assert best in (0.02, 0.05, 0.1, 0.25)


def test_ablation_zero_detector(benchmark):
    """OsdpRR-based vs OsdpLaplaceL1-based zero detection in DAWAz."""
    hists = {
        name: _input(name, rho=0.75) for name in ("adult", "searchlogs")
    }

    def sweep():
        out = {}
        for name, hist in hists.items():
            out[name] = {
                detector: _avg_mre(
                    DawaZ(EPSILON, zero_detector=detector), hist
                )
                for detector in ("osdp_rr", "osdp_laplace_l1")
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name, vals["osdp_rr"], vals["osdp_laplace_l1"]]
        for name, vals in results.items()
    ]
    write_result(
        "ablation_zero_detector",
        format_table(["dataset", "osdp_rr", "osdp_laplace_l1"], rows),
    )
    for vals in results.values():
        assert vals["osdp_rr"] > 0 and vals["osdp_laplace_l1"] > 0


def test_ablation_osdp_rr_scaling(benchmark):
    """Raw sample counts vs inverse-retention (and ratio) rescaling."""
    hist = _input("searchlogs", rho=0.5)

    def sweep():
        return {
            "raw": _avg_mre(OsdpRRHistogram(EPSILON), hist),
            "retention-scaled": _avg_mre(
                OsdpRRHistogram(EPSILON, scaled=True), hist
            ),
            "fully-scaled": _avg_mre(
                OsdpRRHistogram(EPSILON, scaled=True, ns_ratio=0.5), hist
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "ablation_osdp_rr_scaling",
        format_table(["variant", "MRE"], list(results.items())),
    )
    # De-biasing strictly helps under a value-independent (Close) policy.
    assert results["fully-scaled"] < results["retention-scaled"]
    assert results["retention-scaled"] < results["raw"]


def test_ablation_debias(benchmark):
    """Algorithm 2 step 4 (median add-back) on a dense-count histogram."""
    x = np.full(2048, 40.0)
    hist = HistogramInput(x=x, x_ns=x.copy())

    def sweep():
        return {
            "debias": _avg_mre(OsdpLaplaceL1Histogram(EPSILON), hist),
            "no-debias": _avg_mre(
                OsdpLaplaceL1Histogram(EPSILON, debias=False), hist
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "ablation_debias", format_table(["variant", "MRE"], list(results.items()))
    )
    assert results["debias"] < results["no-debias"]


def test_ablation_dawa_penalty(benchmark):
    """DAWA's per-bucket penalty factor: balance bias vs noise."""
    hist = _input("nettrace", rho=0.99)

    def sweep():
        return {
            factor: _avg_mre(Dawa(EPSILON, penalty_factor=factor), hist)
            for factor in (0.1, 0.5, 1.0, 2.0, 8.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "ablation_dawa_penalty",
        format_table(["penalty factor", "MRE"], list(results.items())),
    )
    assert all(v > 0 for v in results.values())
