"""Table 2: DPBench dataset statistics — target vs generated.

The paper's table lists scale and sparsity for the seven benchmark
histograms; the generators must match scale exactly and sparsity
approximately.
"""

from conftest import write_result

from repro.data.dpbench import DPBENCH_SPECS, generate_dpbench, measured_sparsity
from repro.evaluation.runner import format_table


def run_table2():
    rows = []
    for name, spec in sorted(DPBENCH_SPECS.items()):
        x = generate_dpbench(name, seed=0)
        rows.append(
            [name, spec.sparsity, measured_sparsity(x), spec.scale, int(x.sum())]
        )
    return rows


def test_table2_dataset_statistics(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    write_result(
        "table2_datasets",
        format_table(
            ["dataset", "paper sparsity", "measured", "paper scale", "measured scale"],
            rows,
        ),
    )
    for _name, target_sparsity, got_sparsity, target_scale, got_scale in rows:
        assert got_scale == target_scale
        assert abs(got_sparsity - target_sparsity) < 0.05
