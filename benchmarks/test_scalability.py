"""Scalability: release cost and accuracy vs domain size.

Not a paper figure, but a practical adoption question: how do the
mechanisms behave as the histogram domain grows?  Per-bin mechanisms'
error scales linearly with the number of bins while DAWA/DAWAz amortize
noise over buckets — the reason the paper's sparse-domain wins grow
with d (Theorem 5.1's d-dependence, measured).
"""

import numpy as np
from conftest import write_result

from repro.evaluation.metrics import l1_error
from repro.evaluation.runner import format_table, spawn_rngs
from repro.mechanisms.dawaz import DawaZ
from repro.mechanisms.laplace import LaplaceHistogram
from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram
from repro.queries.histogram import HistogramInput

DOMAINS = (256, 1024, 4096, 16384)
EPSILON = 1.0


def _sparse_input(n: int, rng: np.random.Generator) -> HistogramInput:
    x = np.zeros(n)
    support = rng.choice(n, size=max(4, n // 64), replace=False)
    x[support] = rng.poisson(200, size=len(support)).astype(float)
    return HistogramInput(x=x, x_ns=x.copy())


def run_scaling():
    rows = []
    for n in DOMAINS:
        rng = np.random.default_rng(n)
        hist = _sparse_input(n, rng)
        errors = {}
        for name, mech in (
            ("laplace", LaplaceHistogram(EPSILON)),
            ("osdp_laplace_l1", OsdpLaplaceL1Histogram(EPSILON)),
            ("dawaz", DawaZ(EPSILON)),
        ):
            errors[name] = float(
                np.mean(
                    [
                        l1_error(hist.x, mech.release(hist, trial_rng))
                        for trial_rng in spawn_rngs(n, 3)
                    ]
                )
            )
        rows.append(
            [n, errors["laplace"], errors["osdp_laplace_l1"], errors["dawaz"]]
        )
    return rows


def test_scaling_with_domain_size(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    write_result(
        "scalability_domain_size",
        format_table(
            ["domain", "laplace L1", "osdp_laplace_l1 L1", "dawaz L1"], rows
        ),
    )
    by_domain = {row[0]: row for row in rows}
    # Laplace error grows ~linearly in d (Theorem 5.1's 2d/eps)...
    assert by_domain[16384][1] > 30 * by_domain[256][1]
    # ...while the zero-preserving OSDP release's error tracks only the
    # support size (n/64 here): growth bounded by the support factor.
    support_factor = 16384 / 256
    assert by_domain[16384][2] < 1.5 * support_factor * by_domain[256][2]
    # And OSDP stays far below Laplace at every scale.
    for n in DOMAINS:
        assert by_domain[n][2] < by_domain[n][1] / 20
