"""Scalability: release cost and accuracy vs domain size.

Not a paper figure, but a practical adoption question: how do the
mechanisms behave as the histogram domain grows?  Per-bin mechanisms'
error scales linearly with the number of bins while DAWA/DAWAz amortize
noise over buckets — the reason the paper's sparse-domain wins grow
with d (Theorem 5.1's d-dependence, measured).

Domains run to 65536 bins through the batched release path
(``release_batch``, 3 trials per point); the table records the mean L1
error *and* the wall-clock seconds of the 3-trial batch per mechanism,
so both accuracy scaling and throughput scaling are tracked across PRs.
"""

import time

import numpy as np
from conftest import write_result

from repro.evaluation.metrics import l1_error
from repro.evaluation.runner import format_table
from repro.mechanisms.dawaz import DawaZ
from repro.mechanisms.laplace import LaplaceHistogram
from repro.mechanisms.osdp_laplace import OsdpLaplaceL1Histogram
from repro.queries.histogram import HistogramInput

DOMAINS = (256, 1024, 4096, 16384, 65536)
EPSILON = 1.0
N_TRIALS = 3

MECHANISMS = (
    ("laplace", LaplaceHistogram),
    ("osdp_laplace_l1", OsdpLaplaceL1Histogram),
    ("dawaz", DawaZ),
)


def _sparse_input(n: int, rng: np.random.Generator) -> HistogramInput:
    x = np.zeros(n)
    support = rng.choice(n, size=max(4, n // 64), replace=False)
    x[support] = rng.poisson(200, size=len(support)).astype(float)
    return HistogramInput(x=x, x_ns=x.copy())


def run_scaling():
    errors_rows = []
    seconds_rows = []
    for n in DOMAINS:
        rng = np.random.default_rng(n)
        hist = _sparse_input(n, rng)
        errors = {}
        seconds = {}
        for name, factory in MECHANISMS:
            mech = factory(EPSILON)
            start = time.perf_counter()
            estimates = mech.release_batch(
                hist, np.random.default_rng(n), N_TRIALS
            )
            seconds[name] = time.perf_counter() - start
            errors[name] = float(
                np.mean([l1_error(hist.x, row) for row in estimates])
            )
        errors_rows.append([n] + [errors[name] for name, _ in MECHANISMS])
        seconds_rows.append([n] + [seconds[name] for name, _ in MECHANISMS])
    return errors_rows, seconds_rows


def test_scaling_with_domain_size(benchmark):
    errors_rows, seconds_rows = benchmark.pedantic(
        run_scaling, rounds=1, iterations=1
    )
    headers_err = ["domain"] + [f"{name} L1" for name, _ in MECHANISMS]
    headers_sec = ["domain"] + [
        f"{name} s/{N_TRIALS}trials" for name, _ in MECHANISMS
    ]
    write_result(
        "scalability_domain_size",
        format_table(headers_err, errors_rows)
        + "\n\n"
        + format_table(headers_sec, seconds_rows, float_format="{:.4f}"),
    )
    err = {row[0]: row for row in errors_rows}
    sec = {row[0]: row for row in seconds_rows}
    # Laplace error grows ~linearly in d (Theorem 5.1's 2d/eps)...
    assert err[16384][1] > 30 * err[256][1]
    # ...while the zero-preserving OSDP release's error tracks only the
    # support size (n/64 here): growth bounded by the support factor.
    support_factor = 16384 / 256
    assert err[16384][2] < 1.5 * support_factor * err[256][2]
    # And OSDP stays far below Laplace at every scale.
    for n in DOMAINS:
        assert err[n][2] < err[n][1] / 20
    # The 64K-bin point keeps the same structure: linear-in-d Laplace
    # error, support-bounded OSDP error.
    assert err[65536][1] > 100 * err[256][1]
    assert err[65536][2] < 1.5 * (65536 / 256) * err[256][2]
    # Throughput sanity: the batched 3-trial release of a 64K-bin
    # histogram stays sub-second for every mechanism on any plausible
    # hardware (the per-bin ones are tens of milliseconds).
    for i in range(1, len(MECHANISMS) + 1):
        assert sec[65536][i] < 5.0