"""Shared fixtures for the reproduction benchmarks.

The figure benches share two expensive artifacts, computed once per
session: the TIPPERS synthetic trace (Figs 1-5) and the DPBench regret
sweep (Figs 6-10).  Every bench writes the table it regenerates to
``benchmarks/results/<name>.txt`` (and prints it; run with ``-s`` to see
the output inline) so paper-vs-measured comparisons are recorded.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data.tippers import TippersConfig, generate_tippers
from repro.evaluation.experiments.fig6_10_dpbench import (
    DPBenchConfig,
    run_dpbench_sweep,
)

RESULTS_DIR = Path(__file__).parent / "results"

# Laptop-scale stand-in for the 585K-trajectory trace: large enough for
# stable policy fractions and classifier signal, small enough for CI.
BENCH_TIPPERS = TippersConfig(n_users=500, n_days=50, seed=7)

# Reduced DPBench grid: four datasets spanning the sparsity range
# (0.98, 0.97, 0.51, 0.06), five ratios, both policies and epsilons.
BENCH_DPBENCH = DPBenchConfig(
    datasets=("adult", "nettrace", "searchlogs", "patent"),
    ratios=(0.99, 0.75, 0.50, 0.25, 0.01),
    policies=("close", "far"),
    epsilons=(1.0, 0.01),
    n_trials=3,
    seed=11,
)


@pytest.fixture(scope="session")
def tippers_dataset():
    return generate_tippers(BENCH_TIPPERS)


@pytest.fixture(scope="session")
def dpbench_records():
    return run_dpbench_sweep(BENCH_DPBENCH)


def write_result(name: str, text: str) -> None:
    """Persist a bench's table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
