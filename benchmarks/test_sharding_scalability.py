"""Sharded policy evaluation at million-record scale.

Measures the three evaluation paths on a 1M-record columnar database
under a composite algebra policy (the service's hot loop):

* per-record ``policy(record)`` — paper semantics, the pre-columnar
  baseline (timed on a slice and scaled; running 1M Python dispatches
  per round would dominate the whole benchmark session);
* single-node ``evaluate_batch``;
* sharded ``evaluate_batch`` — serially per shard, and on a thread
  pool sized to the shard count.

The table lands in ``benchmarks/results/sharding_scalability.txt`` and
feeds the shard-count scaling section of ``docs/PERFORMANCE.md``.

Assertions are split by fragility.  The tier-1 test asserts only what
holds on any hardware under any load: bit-identical masks and sane
relative magnitudes with generous slack.  The wall-clock *bars* — the
>= 2x parallel speedup with 4+ shards on a >= 4-CPU host — live in the
``bench_regression`` lane alongside the kernel-regression gate, where
timing comparisons belong (quiet, comparable machines only).  Thread
pools are the right executor for this workload: the mask kernels are
numpy ufunc pipelines that release the GIL.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from conftest import write_result

from repro.core.policy import (
    AttributePolicy,
    MinimumRelaxationPolicy,
    OptInPolicy,
    SensitiveValuePolicy,
)
from repro.core.policy_language import compile_policy
from repro.data.columnar import ColumnarDatabase
from repro.data.workers import ShardWorkerPool
from repro.evaluation.runner import format_table

N_RECORDS = 1_000_000
PER_RECORD_SAMPLE = 20_000  # per-record baseline slice (scaled up)
SHARD_COUNTS = (1, 2, 4, 8, 16)
POOL_SHARDS = 4  # shard-resident process workers in the pool lane
ROUNDS = 3


def _database(n: int) -> ColumnarDatabase:
    rng = np.random.default_rng(7)
    return ColumnarDatabase(
        {
            "age": rng.integers(0, 100, n),
            "city": rng.integers(0, 64, n),
            "opt_in": rng.integers(0, 2, n).astype(bool),
        }
    )


def _policy():
    """A 3-leaf algebra policy — several vectorized passes per record."""
    return MinimumRelaxationPolicy(
        [
            AttributePolicy("age", lambda v: v <= 25, name="minors"),
            SensitiveValuePolicy("city", set(range(8))),
            OptInPolicy(),
        ]
    )


def _portable_policy():
    """The same labelling as ``_policy`` with a serializable minors leaf.

    The worker-pool lane ships policies as specs, which an opaque
    ``AttributePolicy`` lambda cannot cross; the compiled predicate
    spec is the declarative twin of the same predicate.
    """
    return MinimumRelaxationPolicy(
        [
            compile_policy({"attr": "age", "op": "<=", "value": 25}),
            SensitiveValuePolicy("city", set(range(8))),
            OptInPolicy(),
        ]
    )


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


_RESULT: dict | None = None


def run_sharding_benchmark():
    db = _database(N_RECORDS)
    policy = _policy()
    reference = policy.evaluate_batch(db)

    # Per-record baseline, measured on a slice and scaled to N_RECORDS.
    sample = db.slice_records(0, PER_RECORD_SAMPLE)
    records = list(sample.iter_records())
    per_record_s = _best_of(
        lambda: [policy(r) for r in records], rounds=1
    ) * (N_RECORDS / PER_RECORD_SAMPLE)

    single_s = _best_of(lambda: policy.evaluate_batch(db))

    rows = []
    threaded_speedups = {}
    for k in SHARD_COUNTS:
        sharded = db.shard(k)
        assert np.array_equal(sharded.mask(policy), reference)
        serial_s = _best_of(lambda: sharded.mask(policy))
        with ThreadPoolExecutor(max_workers=k) as pool:
            pooled = sharded.with_executor(pool)
            assert np.array_equal(pooled.mask(policy), reference)
            threaded_s = _best_of(lambda: pooled.mask(policy))
        threaded_speedups[k] = single_s / threaded_s
        rows.append(
            [
                k,
                serial_s * 1e3,
                threaded_s * 1e3,
                single_s / serial_s,
                single_s / threaded_s,
            ]
        )

    # Shard-resident worker-pool lane: persistent processes, specs on
    # the wire, columns shipped once at pool start.  Cold = a policy
    # the workers have not seen (per-round distinct specs, so their
    # spec-keyed caches cannot serve); warm = re-requesting a cached
    # policy, the server's hot loop.
    portable = _portable_policy()
    sharded = db.shard(POOL_SHARDS)
    with ShardWorkerPool(sharded.shards) as pool:
        pooled = sharded.with_executor(pool)
        assert np.array_equal(pooled.mask(portable), reference)
        cold = [
            MinimumRelaxationPolicy(
                [
                    compile_policy(
                        {"attr": "age", "op": "<=", "value": 26 + i}
                    ),
                    SensitiveValuePolicy("city", set(range(8))),
                    OptInPolicy(),
                ]
            )
            for i in range(ROUNDS)
        ]
        pool_cold_s = min(
            _best_of(lambda p=p: pooled.mask(p), rounds=1) for p in cold
        )
        pool_warm_s = _best_of(lambda: pooled.mask(portable))
        pool_stats = pool.stats.as_dict()
    single_cold_s = min(
        _best_of(lambda p=p: p.evaluate_batch(db), rounds=1) for p in cold
    )

    return {
        "per_record_s": per_record_s,
        "single_s": single_s,
        "single_cold_s": single_cold_s,
        "rows": rows,
        "threaded_speedups": threaded_speedups,
        "pool_cold_s": pool_cold_s,
        "pool_warm_s": pool_warm_s,
        "pool_stats": pool_stats,
    }


def _measured() -> dict:
    """Run the measurement once per session, shared by both tests."""
    global _RESULT
    if _RESULT is None:
        _RESULT = run_sharding_benchmark()
    return _RESULT


def test_sharded_policy_evaluation_scaling(benchmark):
    result = benchmark.pedantic(_measured, rounds=1, iterations=1)
    table = format_table(
        ["shards", "serial ms", "threads ms", "serial x", "threads x"],
        result["rows"],
        float_format="{:.2f}",
    )
    stats = result["pool_stats"]
    startup_note = (
        f"startup {stats['startup_bytes']} B of segment descriptors, "
        "columns attached zero-copy"
        if stats["shm_shards"]
        else f"startup {stats['startup_bytes'] / 1e6:.1f} MB shipped once"
    )
    header = (
        f"policy evaluation over {N_RECORDS:,} records "
        f"(cpus={os.cpu_count()})\n"
        f"per-record baseline (scaled): {result['per_record_s']:.2f} s\n"
        f"single-node evaluate_batch:   {result['single_s'] * 1e3:.2f} ms\n"
        f"worker pool ({POOL_SHARDS} procs), cold mask: "
        f"{result['pool_cold_s'] * 1e3:.2f} ms "
        f"(single-node cold: {result['single_cold_s'] * 1e3:.2f} ms)\n"
        f"worker pool cached re-request:   "
        f"{result['pool_warm_s'] * 1e3:.2f} ms "
        f"({startup_note}, "
        f"{stats['request_bytes'] / max(stats['requests'], 1):.0f} B/request)\n"
    )
    write_result("sharding_scalability", header + "\n" + table)

    # Load-insensitive sanity only (the hard wall-clock bars live in
    # the bench_regression lane): the columnar engine beats per-record
    # dispatch by well over an order of magnitude (~50x measured), and
    # sharding is never a pathological cost.
    assert result["per_record_s"] > 20 * result["single_s"]
    for row in result["rows"]:
        assert row[1] / 1e3 < 5.0 * result["single_s"] + 0.5
    # The worker pool's wire contract is load-insensitive: requests are
    # specs (bytes, not columns), and startup either attaches
    # shared-memory segments (descriptor-sized shipment) or pickles the
    # columns exactly once.
    assert stats["pickled_callables"] == 0
    assert stats["request_bytes"] < 1_000 * stats["requests"]
    if stats["shm_shards"]:
        assert stats["startup_bytes"] < 10_000  # descriptors, not columns
    else:  # pragma: no cover - platforms without POSIX shared memory
        assert stats["startup_bytes"] > 1_000_000


@pytest.mark.bench_regression
def test_parallel_speedup_bar():
    """>= 2x policy-evaluation speedup at 1M records with 4+ shards.

    Meaningful only with real cores on a quiet machine, hence the
    bench_regression lane; on hosts with fewer than 4 CPUs the bar is
    reported as a skip, not a pass.
    """
    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(f"needs >= 4 CPUs for a parallel bar (host has {cpus})")
    result = _measured()
    parallelizable = [
        speedup
        for k, speedup in result["threaded_speedups"].items()
        if 4 <= k <= cpus
    ]
    assert max(parallelizable) >= 2.0, result["threaded_speedups"]


@pytest.mark.bench_regression
def test_worker_pool_speedup_bar():
    """>= 2x policy-evaluation speedup on the shard-resident worker pool.

    The process-pool lane of the parallelism bars: masks over 1M
    records, policies crossing as specs, columns resident in the
    workers.  Like the thread bar it needs real cores on a quiet
    machine; hosts under 4 CPUs report a skip with the reason, not a
    pass.
    """
    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(
            f"needs >= 4 CPUs for a process-pool bar (host has {cpus})"
        )
    result = _measured()
    speedup = result["single_cold_s"] / result["pool_cold_s"]
    assert speedup >= 2.0, {
        "single_cold_s": result["single_cold_s"],
        "pool_cold_s": result["pool_cold_s"],
        "speedup": speedup,
    }
