"""Cluster-vs-in-process overhead of the replicated serving tier.

The cluster tier's promise is that scale-out is a deployment decision:
a :class:`repro.api.ClusterBackend` over N endpoints returns releases
bit-identical to one server holding all the shards.  This bench prices
the coordinator's work — one ``hist_counts`` round trip per shard
range plus the merge — against the in-process path on the same data.

The tier-1 assertion is correctness-only (bit-identical estimates).
The wall-clock *bar* — cluster overhead within ``MAX_OVERHEAD_RATIO``
of in-process on a warm stream — lives in the ``bench_regression``
lane, and skips with a reason where loopback sockets are unavailable.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest
from conftest import write_result

from repro.api import ClusterBackend, ClusterEndpoint, ReleaseRequest
from repro.data.columnar import ColumnarDatabase
from repro.evaluation.runner import format_table
from repro.queries.histogram import IntegerBinning
from repro.service import ReleaseServer
from repro.service.rpc import RpcServer

N_RECORDS = 200_000
N_REQUESTS = 50
# Each clustered release pays one hist_counts round trip per shard
# range (two here) on top of the remote-release tax the rpc_overhead
# bench prices.  The bar is generous on purpose: it catches a
# pathological coordinator regression (per-call reconnects, a merge
# that recomputes endpoints serially from cold), not a ratio drift.
MAX_OVERHEAD_RATIO = 60.0

BINNING_SPEC = IntegerBinning("age", 0, 100, 10).to_spec()
POLICY_SPEC = {"kind": "opt_in", "attr": "opt_in"}


def _loopback_unavailable() -> str | None:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:
        return f"loopback sockets unavailable: {exc}"
    return None


def _database() -> ColumnarDatabase:
    rng = np.random.default_rng(11)
    return ColumnarDatabase(
        {
            "age": rng.integers(0, 100, N_RECORDS),
            "opt_in": rng.integers(0, 2, N_RECORDS).astype(bool),
        }
    )


def _half(db: ColumnarDatabase, lo: int, hi: int) -> ColumnarDatabase:
    return ColumnarDatabase(
        {
            name: np.asarray(db[name])[lo:hi].copy()
            for name in db.column_names
        }
    )


def _requests() -> list[ReleaseRequest]:
    return [
        ReleaseRequest(
            "osdp_laplace_l1", 0.1, BINNING_SPEC, POLICY_SPEC,
            n_trials=1, seed=s,
        )
        for s in range(N_REQUESTS)
    ]


def _time_stream(serve) -> tuple[float, list]:
    requests = _requests()
    serve(requests[0])  # warm the caches out of the timed region
    start = time.perf_counter()
    responses = [serve(r) for r in requests]
    elapsed = time.perf_counter() - start
    return elapsed / len(requests), responses


def _measure():
    db = _database()
    local = ReleaseServer(db.shard(2))
    local_per_request, local_responses = _time_stream(local.handle)
    reason = _loopback_unavailable()
    if reason:
        return local_per_request, local_responses, None, None, reason
    mid = N_RECORDS // 2
    servers = [
        RpcServer(ReleaseServer(_half(db, 0, mid).shard(1))).start(),
        RpcServer(ReleaseServer(_half(db, mid, N_RECORDS).shard(1))).start(),
    ]
    try:
        endpoints = [
            ClusterEndpoint(*rpc.address, shard_range=i)
            for i, rpc in enumerate(servers)
        ]
        with ClusterBackend(endpoints) as backend:
            cluster_per_request, cluster_responses = _time_stream(
                backend.handle
            )
    finally:
        for rpc in servers:
            rpc.close()
    return (
        local_per_request,
        local_responses,
        cluster_per_request,
        cluster_responses,
        None,
    )


def _report(local_us: float, cluster_us: float | None) -> str:
    rows = [["in_process", f"{local_us:.1f}", "1.00"]]
    if cluster_us is not None:
        rows.append(
            [
                "cluster_2_endpoints",
                f"{cluster_us:.1f}",
                f"{cluster_us / local_us:.2f}",
            ]
        )
    table = format_table(
        ["path", "us_per_request", "vs_in_process"], rows
    )
    print("\n" + table)
    write_result("cluster_overhead", table)
    return table


def test_cluster_responses_bit_identical_warm_stream():
    local_s, local_responses, cluster_s, cluster_responses, reason = (
        _measure()
    )
    _report(local_s * 1e6, None if cluster_s is None else cluster_s * 1e6)
    if reason:
        pytest.skip(reason)
    for got, want in zip(cluster_responses, local_responses):
        assert np.array_equal(got.estimates, want.estimates)


@pytest.mark.bench_regression
def test_cluster_overhead_within_bar():
    local_s, _, cluster_s, _, reason = _measure()
    if reason:
        pytest.skip(reason)
    ratio = cluster_s / local_s
    _report(local_s * 1e6, cluster_s * 1e6)
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"cluster/in-process latency ratio {ratio:.1f} exceeds "
        f"{MAX_OVERHEAD_RATIO} on a warm stream"
    )
