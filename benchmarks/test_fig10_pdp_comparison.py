"""Fig 10: OsdpLaplaceL1 vs the PDP Suppress baselines (tau = 10, 100).

Paper shape: Suppress only becomes competitive at tau ~ 100 — buying
utility with 100x weaker freedom from exclusion attacks (Theorems 3.1
and 3.4) than the (P, 1)-OSDP algorithm it is compared against.
"""

from conftest import write_result

from repro.evaluation.experiments.fig6_10_dpbench import (
    DEFAULT_POOL,
    DPBenchConfig,
    aggregate_regret,
    run_dpbench_sweep,
)
from repro.evaluation.runner import format_table

SHOWN = ("osdp_laplace_l1", "suppress10", "suppress100")

CONFIG = DPBenchConfig(
    datasets=("adult", "nettrace", "searchlogs", "patent"),
    ratios=(0.99, 0.75, 0.50, 0.25, 0.01),
    policies=("close", "far"),
    epsilons=(1.0,),
    algorithms=DEFAULT_POOL + ("suppress10", "suppress100"),
    n_trials=3,
    seed=11,
)


def test_fig10_pdp_comparison(benchmark):
    records = benchmark.pedantic(
        run_dpbench_sweep, args=(CONFIG,), rounds=1, iterations=1
    )
    # Regret is still measured against the standard pool's optimum;
    # the Suppress variants are outside comparison points, per the paper.
    by_rho = aggregate_regret(records, group_by="rho", pool=DEFAULT_POOL)
    rows = [
        [rho] + [by_rho[rho][a] for a in SHOWN]
        for rho in sorted(by_rho, reverse=True)
    ]
    write_result(
        "fig10_pdp_comparison", format_table(["rho_x", *SHOWN], rows)
    )

    # Shape 1: Suppress10 is far worse than Suppress100 (noise 10x).
    for rho in (0.99, 0.75, 0.50):
        assert by_rho[rho]["suppress100"] < by_rho[rho]["suppress10"]
    # Shape 2 ("Suppress starts becoming competitive for tau >= 100"):
    # on average Suppress100 sits within ~2x of the OSDP algorithm while
    # Suppress10 is far behind both — and that near-parity costs 100x
    # weaker exclusion-attack protection (phi = 100 vs phi = 1).
    avg = {
        algo: sum(by_rho[rho][algo] for rho in by_rho) / len(by_rho)
        for algo in SHOWN
    }
    assert avg["suppress100"] < 2.5 * avg["osdp_laplace_l1"]
    assert avg["suppress10"] > 2 * avg["suppress100"]
