"""Timing microbenchmarks: mechanism release throughput at DPBench scale.

Three benchmark families over 4096-bin histograms:

* ``test_release_throughput`` — one ``release`` call (the original
  series, kept for cross-PR comparability);
* ``test_sequential_trials`` — the paper's 10-trial protocol exactly as
  the seed repository ran it: ``spawn_rngs`` + one ``release`` per
  trial, stacked into the ``(10, d)`` estimate matrix;
* ``test_batch_trials`` — the same 10 trials through the vectorized
  ``release_batch`` fast path (one generator, one noise matrix).

Every run exports the measured stats and the batch-over-sequential
speedups to ``BENCH_mechanisms.json`` at the repo root, so the
throughput trajectory is tracked across PRs.  Two datasets bound the
sparsity range: ``adult`` (0.98 sparse — the support-restricted fast
paths shine) and ``searchlogs`` (0.51 sparse, ~168K non-sensitive
records — binomial-sampling bound).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data.dpbench import generate_dpbench
from repro.data.sampling import m_sampling
from repro.evaluation.experiments.fig6_10_dpbench import make_mechanism
from repro.evaluation.runner import spawn_rngs
from repro.queries.histogram import HistogramInput

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_mechanisms.json"

N_TRIALS = 10
EPSILON = 1.0
NS_RATIO = 0.5

SINGLE_ALGORITHMS = (
    "laplace",
    "osdp_rr",
    "osdp_laplace",
    "osdp_laplace_l1",
    "dawa",
    "dawaz",
)
# (dataset, algorithm) grid for the 10-trial protocols; adult covers the
# full pool, searchlogs the per-bin mechanisms.
TRIAL_CASES = [
    ("adult", algo) for algo in SINGLE_ALGORITHMS
] + [
    ("searchlogs", algo)
    for algo in ("laplace", "osdp_rr", "osdp_laplace", "osdp_laplace_l1")
]

_hists: dict[str, HistogramInput] = {}
_stats: dict[tuple[str, str, str], dict] = {}


def _hist(dataset: str) -> HistogramInput:
    if dataset not in _hists:
        x = generate_dpbench(dataset, seed=0).astype(float)
        x_ns = m_sampling(x, NS_RATIO, np.random.default_rng(0)).x_ns.astype(float)
        hist = HistogramInput(x=x, x_ns=x_ns)
        hist.ns_support_sorted  # warm the cached support views
        _hists[dataset] = hist
    return _hists[dataset]


def _capture(benchmark, dataset: str, algorithm: str, mode: str) -> None:
    if benchmark.stats is None:  # --benchmark-disable smoke runs
        return
    stats = benchmark.stats.stats
    _stats[(dataset, algorithm, mode)] = {
        "dataset": dataset,
        "algorithm": algorithm,
        "mode": mode,
        "n_bins": 4096,
        "n_trials": N_TRIALS if mode != "single" else 1,
        "min_s": stats.min,
        "mean_s": stats.mean,
        "median_s": stats.median,
        "stddev_s": stats.stddev,
        "rounds": stats.rounds,
    }


@pytest.fixture(scope="module", autouse=True)
def _export_json():
    """Write BENCH_mechanisms.json once the module's benches have run.

    Only a complete run may overwrite the tracked record: a filtered
    (``-k``) or timing-disabled session leaves the existing file alone.
    """
    yield
    required = [
        (ds, algo, mode)
        for ds, algo in TRIAL_CASES
        for mode in ("sequential_trials", "batch_trials")
    ] + [("searchlogs", algo, "single") for algo in SINGLE_ALGORITHMS]
    if not all(key in _stats for key in required):
        return
    speedups: dict[str, dict[str, dict[str, float]]] = {}
    for (dataset, algorithm, mode) in list(_stats):
        if mode != "batch_trials":
            continue
        seq = _stats.get((dataset, algorithm, "sequential_trials"))
        bat = _stats[(dataset, algorithm, "batch_trials")]
        if seq is None:
            continue
        speedups.setdefault(dataset, {})[algorithm] = {
            "sequential_min_s": seq["min_s"],
            "batch_min_s": bat["min_s"],
            # Min-over-rounds is pytest-benchmark's primary statistic:
            # robust to scheduler noise, so it is the headline ratio.
            "speedup": seq["min_s"] / bat["min_s"],
            "speedup_median": seq["median_s"] / bat["median_s"],
            "speedup_mean": seq["mean_s"] / bat["mean_s"],
        }
    payload = {
        "description": (
            "Mechanism release throughput on 4096-bin DPBench histograms. "
            "'sequential_trials' is the paper's 10-trial protocol "
            "(spawn_rngs + one release per trial, stacked); 'batch_trials' "
            "is release_batch(hist, rng, 10) — the vectorized fast path. "
            "speedup_* = sequential time / batch time for the same "
            "10-trial workload."
        ),
        "protocol": {
            "n_bins": 4096,
            "n_trials": N_TRIALS,
            "epsilon": EPSILON,
            "ns_ratio": NS_RATIO,
            "datasets": {
                "adult": "sparsity 0.98 (sparse)",
                "searchlogs": "sparsity 0.51 (~168K non-sensitive records)",
            },
        },
        "speedup_batch_over_sequential": speedups,
        "benchmarks": sorted(
            _stats.values(),
            key=lambda r: (r["dataset"], r["algorithm"], r["mode"]),
        ),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize("algorithm", SINGLE_ALGORITHMS)
def test_release_throughput(benchmark, algorithm):
    hist = _hist("searchlogs")
    mech = make_mechanism(algorithm, epsilon=EPSILON, ns_ratio=NS_RATIO)
    rng = np.random.default_rng(99)
    out = benchmark(mech.release, hist, rng)
    assert out.shape == hist.x.shape
    _capture(benchmark, "searchlogs", algorithm, "single")


@pytest.mark.parametrize("dataset,algorithm", TRIAL_CASES)
def test_sequential_trials(benchmark, dataset, algorithm):
    """10 sequential release calls under the spawned-rng trial protocol."""
    hist = _hist(dataset)
    mech = make_mechanism(algorithm, epsilon=EPSILON, ns_ratio=NS_RATIO)

    def run():
        return np.stack(
            [mech.release(hist, rng) for rng in spawn_rngs(7, N_TRIALS)]
        )

    out = benchmark(run)
    assert out.shape == (N_TRIALS, hist.n_bins)
    _capture(benchmark, dataset, algorithm, "sequential_trials")


@pytest.mark.parametrize("dataset,algorithm", TRIAL_CASES)
def test_batch_trials(benchmark, dataset, algorithm):
    """The same 10 trials through the release_batch fast path."""
    hist = _hist(dataset)
    mech = make_mechanism(algorithm, epsilon=EPSILON, ns_ratio=NS_RATIO)

    def run():
        return mech.release_batch(hist, np.random.default_rng(7), N_TRIALS)

    out = benchmark(run)
    assert out.shape == (N_TRIALS, hist.n_bins)
    _capture(benchmark, dataset, algorithm, "batch_trials")
