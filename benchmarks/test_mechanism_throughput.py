"""Timing microbenchmarks: mechanism release throughput on 4096 bins.

These use pytest-benchmark's statistical timing (multiple rounds) to
track the runtime cost of each release mechanism at DPBench scale.
"""

import numpy as np
import pytest

from repro.data.dpbench import generate_dpbench
from repro.data.sampling import m_sampling
from repro.evaluation.experiments.fig6_10_dpbench import make_mechanism
from repro.queries.histogram import HistogramInput


@pytest.fixture(scope="module")
def hist():
    x = generate_dpbench("searchlogs", seed=0).astype(float)
    x_ns = m_sampling(x, 0.5, np.random.default_rng(0)).x_ns.astype(float)
    return HistogramInput(x=x, x_ns=x_ns)


@pytest.mark.parametrize(
    "algorithm",
    ["laplace", "osdp_rr", "osdp_laplace", "osdp_laplace_l1", "dawa", "dawaz"],
)
def test_release_throughput(benchmark, hist, algorithm):
    mech = make_mechanism(algorithm, epsilon=1.0, ns_ratio=0.5)
    rng = np.random.default_rng(99)
    out = benchmark(mech.release, hist, rng)
    assert out.shape == hist.x.shape
