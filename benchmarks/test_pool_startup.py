"""Pool startup (pickle-ship vs shm-attach) + concurrent-RPC throughput.

Two PR-5 claims, measured:

* **Startup.**  `ShardWorkerPool` over pickled columns ships a full
  copy per worker (bytes and wall-clock scale with the table);
  shared-memory backing ships a ~100-byte descriptor per worker and
  attaches in O(1) — the table records both, at two database sizes, so
  the scaling difference is visible in one file
  (`benchmarks/results/pool_startup.txt`).
* **Concurrent reads.**  The RPC tier serves the read path under a
  shared lock; four warm-cache analyst threads against one server must
  beat the same request stream issued serially.  The aggregate
  throughput row lands in the same results file; the ≥2× bar is a
  `bench_regression` test that skips with a reason on hosts with fewer
  than 4 CPUs (cores cannot be conjured).

Tier-1 keeps only load-insensitive assertions: bit-identical masks on
both startup paths, descriptor-sized shm startup independent of record
count, and every concurrent response matching its serial twin.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest
from conftest import write_result

from repro.api import OsdpClient, ReleaseRequest
from repro.core.policy import OptInPolicy
from repro.data.columnar import ColumnarDatabase
from repro.data.store import shm_available
from repro.data.workers import ShardWorkerPool
from repro.evaluation.runner import format_table
from repro.queries.histogram import IntegerBinning
from repro.service import ReleaseServer
from repro.service.rpc import RpcServer

N_SHARDS = 4
SIZES = (200_000, 800_000)
N_BINS = 4_096
N_CLIENTS = 4
REQUESTS_PER_CLIENT = 12
N_TRIALS = 16


def _database(n: int) -> ColumnarDatabase:
    rng = np.random.default_rng(11)
    return ColumnarDatabase(
        {
            "value": rng.integers(0, N_BINS, n),
            "opt_in": rng.integers(0, 2, n).astype(bool),
        }
    )


def _time_pool_startup(shards, shm) -> tuple[float, dict]:
    start = time.perf_counter()
    pool = ShardWorkerPool(shards, shm=shm)
    elapsed = time.perf_counter() - start
    stats = pool.stats.as_dict()
    pool.close()
    return elapsed, stats


BINNING_SPEC = IntegerBinning("value", 0, N_BINS, 1).to_spec()
POLICY_SPEC = {"kind": "opt_in", "attr": "opt_in"}


def _request(seed: int) -> ReleaseRequest:
    return ReleaseRequest(
        "laplace",
        0.5,
        BINNING_SPEC,
        POLICY_SPEC,
        n_trials=N_TRIALS,
        seed=seed,
    )


def _measure_startup() -> list[list]:
    rows = []
    for n in SIZES:
        sharded = _database(n).shard(N_SHARDS)
        reference = sharded.mask(OptInPolicy())
        for shm, label in ((False, "pickle"), (None, "shm")):
            if shm is None and not shm_available():
                continue
            elapsed, stats = _time_pool_startup(sharded.shards, shm)
            # the paths must agree bit for bit before timings mean
            # anything
            with ShardWorkerPool(sharded.shards, shm=shm) as pool:
                assert np.array_equal(
                    sharded.with_executor(pool).mask(OptInPolicy()),
                    reference,
                )
            rows.append(
                [
                    n,
                    label,
                    elapsed * 1e3,
                    stats["startup_bytes"] / N_SHARDS,
                    stats["shm_shards"],
                ]
            )
    return rows


def _measure_concurrent_rpc() -> dict:
    """Serial vs 4-thread aggregate throughput on a warm-cache server."""
    db = _database(SIZES[0])
    server = ReleaseServer(db.shard(N_SHARDS))
    total = N_CLIENTS * REQUESTS_PER_CLIENT
    with RpcServer(server).start() as rpc:
        host, port = rpc.address
        with OsdpClient.connect(host, port) as client:
            client.release(_request(seed=0))  # warm the histogram cache

            start = time.perf_counter()
            serial = [
                client.release(_request(seed=1 + i)).estimates
                for i in range(total)
            ]
            serial_s = time.perf_counter() - start

            results: list = [None] * total

            def analyst(thread: int) -> None:
                for j in range(REQUESTS_PER_CLIENT):
                    index = thread * REQUESTS_PER_CLIENT + j
                    results[index] = client.release(
                        _request(seed=1 + index)
                    ).estimates

            threads = [
                threading.Thread(target=analyst, args=(t,))
                for t in range(N_CLIENTS)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            concurrent_s = time.perf_counter() - start
    return {
        "serial_s": serial_s,
        "concurrent_s": concurrent_s,
        "speedup": serial_s / concurrent_s,
        "serial": serial,
        "concurrent": results,
        "total": total,
    }


_RESULT: dict | None = None


def _measured() -> dict:
    global _RESULT
    if _RESULT is None:
        _RESULT = {
            "startup_rows": _measure_startup(),
            "rpc": _measure_concurrent_rpc(),
        }
    return _RESULT


def test_pool_startup_and_concurrent_rpc(benchmark):
    result = benchmark.pedantic(_measured, rounds=1, iterations=1)
    rows = result["startup_rows"]
    table = format_table(
        ["records", "path", "startup ms", "B/worker", "shm shards"],
        rows,
        float_format="{:.2f}",
    )
    rpc = result["rpc"]
    header = (
        f"pool startup, {N_SHARDS} workers (cpus={os.cpu_count()})\n"
        f"concurrent RPC: {rpc['total']} warm-cache laplace releases "
        f"({N_TRIALS}x{N_BINS} bins)\n"
        f"  serial 1 client:      {rpc['serial_s'] * 1e3:.1f} ms\n"
        f"  {N_CLIENTS} threaded clients:   "
        f"{rpc['concurrent_s'] * 1e3:.1f} ms\n"
        f"  aggregate speedup:    {rpc['speedup']:.2f}x\n"
    )
    write_result("pool_startup", header + "\n" + table)

    # Load-insensitive contracts only (wall-clock bars live in the
    # bench_regression lane):
    by_key = {(r[0], r[1]): r for r in rows}
    if (SIZES[0], "shm") in by_key:
        small, large = by_key[(SIZES[0], "shm")], by_key[(SIZES[1], "shm")]
        # descriptors, not columns: O(1) request bytes per worker,
        # independent of a 4x record growth (acceptance criterion)
        assert abs(large[3] - small[3]) < 100
        assert large[3] < 2_000
        assert large[4] == N_SHARDS
    # the pickle path ships the columns: per-worker bytes scale ~4x
    assert (
        by_key[(SIZES[1], "pickle")][3]
        > 3 * by_key[(SIZES[0], "pickle")][3]
    )
    # concurrency must never corrupt a response: every concurrent
    # seeded release matches its serial twin bit for bit
    for got, want in zip(rpc["concurrent"], rpc["serial"]):
        assert np.array_equal(got, want)


@pytest.mark.bench_regression
def test_shm_startup_ships_orders_of_magnitude_fewer_bytes():
    """The zero-copy claim as a regression bar: ≥100x fewer startup
    bytes per worker than the pickle shipment on the 800k-record table.

    Bytes, not wall-clock: process spawn dominates both paths' startup
    time at bench scale (the table in the results file records the
    timings for reference), while the shipment size is deterministic —
    if descriptor shipping ever silently falls back to pickled columns,
    or descriptors bloat, this trips regardless of machine load.
    """
    if not shm_available():
        pytest.skip("POSIX shared memory unavailable on this host")
    rows = {(r[0], r[1]): r for r in _measured()["startup_rows"]}
    pickle_bytes = rows[(SIZES[1], "pickle")][3]
    shm_bytes = rows[(SIZES[1], "shm")][3]
    assert pickle_bytes / shm_bytes >= 100.0, {
        "pickle_bytes_per_worker": pickle_bytes,
        "shm_bytes_per_worker": shm_bytes,
    }


@pytest.mark.bench_regression
def test_threaded_aggregate_exceeds_serial():
    """>1x aggregate: four threaded clients must at least beat serial.

    The kernel-tier acceptance row (ROADMAP item 3): with GIL-releasing
    compiled kernels on the noise path, four analyst threads can
    overlap on real cores, so the aggregate stream must be strictly
    faster than issuing the same requests serially — the historical
    numpy-only measurement sat below 1x (0.67x on the lane this bar
    was cut from) because every release held the GIL end to end.
    Needs real cores: hosts under 4 CPUs skip with the reason.
    """
    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(
            f"needs >= 4 CPUs for a concurrency bar (host has {cpus})"
        )
    rpc = _measured()["rpc"]
    assert rpc["speedup"] > 1.0, {
        "serial_s": rpc["serial_s"],
        "concurrent_s": rpc["concurrent_s"],
        "speedup": rpc["speedup"],
    }


@pytest.mark.bench_regression
def test_concurrent_rpc_throughput_bar():
    """≥2x aggregate read throughput for 4 concurrent warm-cache clients.

    The readers-writer acceptance bar: four analyst threads sharing one
    OsdpClient against one RpcServer must clear twice the serial-stream
    throughput.  Meaningful only with real cores on a quiet machine;
    hosts under 4 CPUs report a skip with the reason, not a pass.
    """
    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(
            f"needs >= 4 CPUs for a concurrency bar (host has {cpus})"
        )
    rpc = _measured()["rpc"]
    assert rpc["speedup"] >= 2.0, {
        "serial_s": rpc["serial_s"],
        "concurrent_s": rpc["concurrent_s"],
        "speedup": rpc["speedup"],
    }
