"""Group-commit ingest throughput: batched vs singleton appends.

The streaming tier's headline: one telemetry event per
``append_records`` pays a full RPC round trip plus one WAL fsync per
event; the :class:`~repro.ingest.buffer.IngestBuffer` group commit
amortizes both across the batch.  This bench streams the same
telemetry events both ways into a durable loopback
:class:`repro.service.rpc.RpcServer` (real socket, real fsync) while a
concurrent reader hammers ``true_histogram``, and reports events/sec
plus the speedup.

The tier-1 assertions are correctness-only: the reader never observes
a torn batch (every histogram totals a whole number of flushed
events), and the final column state is bit-identical to a cold batch
load of the same stream.  The wall-clock *bar* — batched ingest at
least ``MIN_SPEEDUP`` times the singleton path's events/sec — lives in
the ``bench_regression`` lane with the other timing gates.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest
from conftest import write_result

from repro.api import OsdpClient
from repro.data.telemetry import (
    TelemetryConfig,
    telemetry_database,
    telemetry_events,
)
from repro.evaluation.runner import format_table
from repro.ingest import IngestBuffer
from repro.queries.histogram import IntegerBinning
from repro.service.rpc import RpcServer
from repro.service.server import ReleaseServer
from repro.service.wal import WriteAheadLog

CFG = TelemetryConfig(seed=5)
#: Acceptance bar: group commit must beat per-event appends by 5x.
MIN_SPEEDUP = 5.0
N_SINGLETON = 300  # per-event fsyncs are slow; keep the slow lane short
N_BATCHED = 3000
BATCH_EVENTS = 256
BINNING_SPEC = IntegerBinning("region", 0, CFG.n_regions, 1).to_spec()


def _loopback_unavailable() -> str | None:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:
        return f"loopback sockets unavailable: {exc}"
    return None


_SKIP = _loopback_unavailable()
pytestmark = pytest.mark.skipif(_SKIP is not None, reason=_SKIP or "")


def _stream(wal_dir, n_events: int, batched: bool) -> dict:
    """Stream ``n_events`` into a fresh durable server; time the writes."""
    rpc = RpcServer(
        ReleaseServer(telemetry_database(0, CFG)),
        wal=WriteAheadLog(wal_dir),
    ).start()
    try:
        with OsdpClient.connect(*rpc.address) as client:
            events = list(telemetry_events(n_events, CFG))
            histograms: list[np.ndarray] = []
            stop = threading.Event()

            def read_loop() -> None:
                with OsdpClient.connect(*rpc.address) as reader:
                    while not stop.is_set():
                        histograms.append(
                            np.asarray(reader.true_histogram(BINNING_SPEC))
                        )
                        time.sleep(0.002)

            reader_thread = threading.Thread(target=read_loop, daemon=True)
            reader_thread.start()
            start = time.perf_counter()
            if batched:
                with IngestBuffer(client, max_events=BATCH_EVENTS) as buffer:
                    buffer.extend(events)
                flushes = buffer.flushes
            else:
                for event in events:
                    client.append_records([event])
                flushes = n_events
            elapsed = time.perf_counter() - start
            stop.set()
            reader_thread.join(timeout=10)

            live = rpc.release_server.db
            live = (
                live.to_columnar() if hasattr(live, "to_columnar") else live
            )
            cold = telemetry_database(n_events, CFG)
            for name in cold.column_names:
                a, b = np.asarray(live[name]), np.asarray(cold[name])
                assert a.dtype == b.dtype and np.array_equal(a, b), name
            return {
                "events": n_events,
                "elapsed_s": elapsed,
                "events_per_s": n_events / elapsed,
                "wal_entries": rpc.wal.last_seq,
                "flushes": flushes,
                "histograms": histograms,
            }
    finally:
        rpc.close()


_RESULTS: dict[str, dict] = {}


def _measured(tmp_path_factory) -> dict[str, dict]:
    if not _RESULTS:
        base = tmp_path_factory.mktemp("ingest-bench")
        _RESULTS["singleton"] = _stream(
            base / "singleton", N_SINGLETON, batched=False
        )
        _RESULTS["batched"] = _stream(
            base / "batched", N_BATCHED, batched=True
        )
    return _RESULTS


def test_streamed_state_bit_identical_with_concurrent_reads(
    tmp_path_factory,
):
    results = _measured(tmp_path_factory)
    # _stream already asserted final-state bit-identity; here pin that
    # the concurrent reader only ever saw whole group commits.
    batched = results["batched"]
    assert batched["wal_entries"] == batched["flushes"]
    totals = {int(h.sum()) for h in batched["histograms"]}
    whole_commits = {k * BATCH_EVENTS for k in range(N_BATCHED // BATCH_EVENTS + 1)}
    whole_commits.add(N_BATCHED)  # the final partial flush
    assert totals <= whole_commits, totals - whole_commits
    # The singleton lane logged one WAL entry per event.
    assert results["singleton"]["wal_entries"] == N_SINGLETON


def test_report_ingest_throughput(tmp_path_factory):
    results = _measured(tmp_path_factory)
    single, batched = results["singleton"], results["batched"]
    speedup = batched["events_per_s"] / single["events_per_s"]
    rows = [
        [
            "singleton append",
            single["events"],
            single["wal_entries"],
            f"{single['events_per_s']:.0f}",
        ],
        [
            f"group commit ({BATCH_EVENTS}/batch)",
            batched["events"],
            batched["wal_entries"],
            f"{batched['events_per_s']:.0f}",
        ],
        [
            "speedup",
            "",
            "",
            f"{speedup:.1f}x (bar: >={MIN_SPEEDUP:.0f}x)",
        ],
    ]
    write_result(
        "ingest_throughput",
        format_table(["mode", "events", "wal entries", "events/s"], rows),
    )
    assert speedup > 1.0  # the generous tier-1 sanity floor


@pytest.mark.bench_regression
def test_group_commit_meets_the_speedup_bar(tmp_path_factory):
    results = _measured(tmp_path_factory)
    speedup = (
        results["batched"]["events_per_s"]
        / results["singleton"]["events_per_s"]
    )
    assert speedup >= MIN_SPEEDUP, (
        f"group-commit ingest only {speedup:.1f}x the singleton append "
        f"path (bar: {MIN_SPEEDUP}x)"
    )
