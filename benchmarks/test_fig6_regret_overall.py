"""Fig 6: average MRE-regret by non-sensitive ratio, both policies.

Paper shape: OSDP algorithms dominate for high ratios; for rho <= 0.25
the DP algorithm (DAWA) overtakes the pure OSDP primitive; low epsilon
favors the hybrid DAWAz.
"""

from conftest import BENCH_DPBENCH, write_result

from repro.evaluation.experiments.fig6_10_dpbench import (
    aggregate_regret,
    overall_average_regret,
)
from repro.evaluation.runner import format_table

SHOWN = ("osdp_laplace_l1", "dawaz", "dawa")


def test_fig6_overall_regret(benchmark, dpbench_records):
    def aggregate():
        tables = {}
        for eps in BENCH_DPBENCH.epsilons:
            tables[eps] = {
                "by_rho": aggregate_regret(
                    dpbench_records, group_by="rho", where={"epsilon": eps}
                ),
                "avg": overall_average_regret(
                    dpbench_records, where={"epsilon": eps}
                ),
            }
        return tables

    tables = benchmark.pedantic(aggregate, rounds=1, iterations=1)
    for eps, data in tables.items():
        rows = [["Avg"] + [data["avg"][a] for a in SHOWN]]
        for rho in sorted(data["by_rho"], reverse=True):
            rows.append([rho] + [data["by_rho"][rho][a] for a in SHOWN])
        write_result(
            f"fig6_regret_overall_eps{eps:g}",
            format_table(["rho_x", *SHOWN], rows),
        )

    by_rho_1 = tables[1.0]["by_rho"]
    # Shape 1: at the most permissive ratio OSDP crushes the DP baseline.
    assert by_rho_1[0.99]["osdp_laplace_l1"] < by_rho_1[0.99]["dawa"]
    # Shape 2: at rho = 0.01 the DP algorithm overtakes pure OSDP.
    assert by_rho_1[0.01]["dawa"] < by_rho_1[0.01]["osdp_laplace_l1"]
    # Shape 3: DAWA's regret falls monotonically-ish as rho drops.
    assert by_rho_1[0.01]["dawa"] < by_rho_1[0.99]["dawa"]
    # Shape 4: at eps = 0.01 the hybrid DAWAz strictly dominates DAWA at
    # every ratio.  (The paper additionally shows DAWAz beating the pure
    # OSDP primitive on average at eps = 0.01; under our exact-ratio
    # de-biasing convention OsdpLaplaceL1 also stays competitive — see
    # EXPERIMENTS.md, deviations.)
    by_rho_001 = tables[0.01]["by_rho"]
    for rho in by_rho_001:
        assert by_rho_001[rho]["dawaz"] < by_rho_001[rho]["dawa"]
