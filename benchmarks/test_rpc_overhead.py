"""Remote-vs-in-process overhead of the release service.

The API redesign's promise is that where a release runs is a
deployment decision; this bench prices it.  One loopback
:class:`repro.service.rpc.RpcServer` and one in-process
:class:`ReleaseServer` over the same data serve the same warm-cache
request stream, and the table reports per-request latency plus the
remote/in-process ratio (the socket tax: framing, two syscalls, one
JSON header and one raw estimate buffer each way).

The tier-1 assertions are correctness-only (bit-identical responses,
sane magnitudes).  The wall-clock *bar* — remote overhead within
``MAX_OVERHEAD_RATIO`` of in-process on a warm cache — lives in the
``bench_regression`` lane with the other timing gates, and skips with
a reason where loopback sockets are unavailable.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest
from conftest import write_result

from repro.api import OsdpClient, ReleaseRequest
from repro.data.columnar import ColumnarDatabase
from repro.evaluation.runner import format_table
from repro.queries.histogram import IntegerBinning
from repro.service import ReleaseServer
from repro.service.rpc import RpcServer

N_RECORDS = 200_000
N_REQUESTS = 50
# A warm-cache release is ~1ms of mechanism work; the socket adds
# framing + loopback round trip.  The bar is deliberately generous —
# it exists to catch a pathological transport regression (accidental
# per-request reconnects, base64 in the hot path), not to pin a ratio.
MAX_OVERHEAD_RATIO = 25.0

BINNING_SPEC = IntegerBinning("age", 0, 100, 10).to_spec()
POLICY_SPEC = {"kind": "opt_in", "attr": "opt_in"}


def _loopback_unavailable() -> str | None:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError as exc:
        return f"loopback sockets unavailable: {exc}"
    return None


def _database() -> ColumnarDatabase:
    rng = np.random.default_rng(11)
    return ColumnarDatabase(
        {
            "age": rng.integers(0, 100, N_RECORDS),
            "opt_in": rng.integers(0, 2, N_RECORDS).astype(bool),
        }
    )


def _requests() -> list[ReleaseRequest]:
    return [
        ReleaseRequest(
            "osdp_laplace_l1", 0.1, BINNING_SPEC, POLICY_SPEC,
            n_trials=1, seed=s,
        )
        for s in range(N_REQUESTS)
    ]


def _time_stream(serve) -> tuple[float, list]:
    requests = _requests()
    serve(requests[0])  # warm the caches out of the timed region
    start = time.perf_counter()
    responses = [serve(r) for r in requests]
    elapsed = time.perf_counter() - start
    return elapsed / len(requests), responses


def _measure():
    db = _database()
    local = ReleaseServer(db.shard(1))
    local_per_request, local_responses = _time_stream(local.handle)
    reason = _loopback_unavailable()
    if reason:
        return local_per_request, local_responses, None, None, reason
    with RpcServer(ReleaseServer(_database().shard(1))).start() as rpc:
        with OsdpClient.connect(*rpc.address) as client:
            remote_per_request, remote_responses = _time_stream(
                client.release
            )
    return (
        local_per_request,
        local_responses,
        remote_per_request,
        remote_responses,
        None,
    )


def _report(local_us: float, remote_us: float | None) -> str:
    rows = [["in_process", f"{local_us:.1f}", "1.00"]]
    if remote_us is not None:
        rows.append(
            ["remote_loopback", f"{remote_us:.1f}", f"{remote_us / local_us:.2f}"]
        )
    table = format_table(
        ["path", "us_per_request", "vs_in_process"], rows
    )
    print("\n" + table)
    write_result("rpc_overhead", table)
    return table


def test_remote_responses_bit_identical_warm_stream():
    local_s, local_responses, remote_s, remote_responses, reason = _measure()
    _report(local_s * 1e6, None if remote_s is None else remote_s * 1e6)
    if reason:
        pytest.skip(reason)
    for got, want in zip(remote_responses, local_responses):
        assert np.array_equal(got.estimates, want.estimates)
        assert got.cache_hit == want.cache_hit


@pytest.mark.bench_regression
def test_remote_overhead_within_bar():
    local_s, _, remote_s, _, reason = _measure()
    if reason:
        pytest.skip(reason)
    ratio = remote_s / local_s
    _report(local_s * 1e6, remote_s * 1e6)
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"remote/in-process latency ratio {ratio:.1f} exceeds "
        f"{MAX_OVERHEAD_RATIO} on a warm cache"
    )
