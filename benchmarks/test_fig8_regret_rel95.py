"""Fig 8: Rel95 (tail per-bin error) regret by ratio and policy, eps = 1.

Paper shape: mirrors Fig 7 with the OSDP advantage most pronounced in
the high-error bins.
"""

from conftest import write_result

from repro.evaluation.experiments.fig6_10_dpbench import aggregate_regret
from repro.evaluation.runner import format_table

SHOWN = ("osdp_laplace_l1", "dawaz", "dawa")


def test_fig8_rel95_regret(benchmark, dpbench_records):
    def aggregate():
        return {
            policy: aggregate_regret(
                dpbench_records,
                metric="rel95",
                group_by="rho",
                where={"policy": policy, "epsilon": 1.0},
            )
            for policy in ("close", "far")
        }

    tables = benchmark.pedantic(aggregate, rounds=1, iterations=1)
    for policy, by_rho in tables.items():
        rows = [
            [rho] + [by_rho[rho][a] for a in SHOWN]
            for rho in sorted(by_rho, reverse=True)
        ]
        write_result(
            f"fig8_rel95_regret_{policy}",
            format_table(["rho_x", *SHOWN], rows),
        )

    close = tables["close"]
    # OSDP's tail-error advantage at permissive Close policies.
    assert close[0.99]["osdp_laplace_l1"] < close[0.99]["dawa"]
    assert close[0.75]["dawaz"] < close[0.75]["dawa"]
