"""Fig 4: MRE on the TIPPERS 2-D (AP x hour) histogram.

Paper shape (eps = 1): OSDP algorithms beat DAWA for policies with
>= 25% non-sensitive records; DAWA's error is policy-independent.  At
eps = 0.01 DAWAz stays competitive across all policies while the pure
OSDP primitive falls behind.
"""

from conftest import BENCH_TIPPERS, write_result

from repro.evaluation.experiments.fig4_5_tippers import (
    ALGORITHMS,
    TippersHistogramConfig,
    run_tippers_histogram,
)
from repro.evaluation.runner import format_table

CONFIG = TippersHistogramConfig(
    tippers=BENCH_TIPPERS,
    policies=(99, 90, 75, 50, 25, 10, 1),
    epsilons=(1.0, 0.01),
    n_trials=5,
)


def test_fig4_tippers_mre(benchmark):
    out = benchmark.pedantic(
        run_tippers_histogram, args=(CONFIG,), rounds=1, iterations=1
    )
    for eps in CONFIG.epsilons:
        rows = [
            [f"P{rho:g}"] + [out["mre"][eps][rho][a] for a in ALGORITHMS]
            for rho in CONFIG.policies
        ]
        write_result(
            f"fig4_tippers_mre_eps{eps:g}",
            format_table(["policy", *ALGORITHMS], rows),
        )

    mre1 = out["mre"][1.0]
    # Shape 1: OSDP wins for high non-sensitive fractions at eps = 1.
    assert mre1[99]["osdp_laplace_l1"] < mre1[99]["dawa"]
    # Shape 2: DAWA's error does not depend on the policy.
    dawa_values = [mre1[rho]["dawa"] for rho in CONFIG.policies]
    assert max(dawa_values) - min(dawa_values) < 0.25 * max(dawa_values)
    # Shape 3: at eps = 0.01, DAWAz is competitive for every policy.
    mre001 = out["mre"][0.01]
    for rho in CONFIG.policies:
        assert mre001[rho]["dawaz"] <= mre001[rho]["dawa"] * 1.5
    # Shape 4: pure OSDP degrades as the sensitive share grows.
    assert mre1[1]["osdp_laplace_l1"] > mre1[99]["osdp_laplace_l1"]
