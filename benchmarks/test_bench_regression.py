"""Kernel-regression gate: fresh BENCH_mechanisms.json vs the baseline.

``benchmarks/baselines/BENCH_mechanisms.json`` is the committed
previous-PR record of the mechanism throughput benches.  This check
compares the freshly generated ``BENCH_mechanisms.json`` at the repo
root against it and fails when any kernel got more than
``SLOWDOWN_TOLERANCE`` slower (min-over-rounds, the statistic robust to
scheduler noise).

It is marked ``bench_regression`` and **skipped by default** — wall
clock comparisons belong in an explicit CI lane, not in tier-1 — so the
workflow is:

    python -m pytest benchmarks/test_mechanism_throughput.py   # regenerate
    python -m pytest -m bench_regression                       # gate

(A full ``python -m pytest`` run also regenerates the JSON.)  At each
PR that intentionally changes kernel performance, refresh the baseline:
copy the new ``BENCH_mechanisms.json`` over
``benchmarks/baselines/BENCH_mechanisms.json`` and commit both.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench_regression

REPO_ROOT = Path(__file__).resolve().parent.parent
CURRENT_PATH = REPO_ROOT / "BENCH_mechanisms.json"
BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_mechanisms.json"

SLOWDOWN_TOLERANCE = 1.25  # fail on >25% slowdown in any kernel


def _load(path: Path) -> dict:
    if not path.exists():
        pytest.fail(
            f"{path} missing - run the throughput benches first "
            "(python -m pytest benchmarks/test_mechanism_throughput.py)"
        )
    return json.loads(path.read_text())


def _index(payload: dict) -> dict[tuple, dict]:
    return {
        (entry["dataset"], entry["algorithm"], entry["mode"]): entry
        for entry in payload["benchmarks"]
    }


def test_no_kernel_slowdown_beyond_tolerance():
    current = _index(_load(CURRENT_PATH))
    baseline = _index(_load(BASELINE_PATH))
    missing = sorted(set(baseline) - set(current))
    assert not missing, f"kernels disappeared from the bench grid: {missing}"

    regressions = []
    for key, base_entry in sorted(baseline.items()):
        ratio = current[key]["min_s"] / base_entry["min_s"]
        if ratio > SLOWDOWN_TOLERANCE:
            regressions.append(
                f"{'/'.join(key)}: {ratio:.2f}x slower "
                f"({base_entry['min_s']:.2e}s -> {current[key]['min_s']:.2e}s)"
            )
    assert not regressions, "kernel regressions:\n" + "\n".join(regressions)


def test_batch_paths_still_beat_sequential():
    """The PR-1 headline must never silently erode.

    Measured speedups range from ~1.9x (binomial-bound searchlogs
    osdp_rr) to ~15x (support-restricted adult osdp_laplace_l1); 1.3x
    is the floor below which a batch path has effectively regressed to
    the sequential loop.
    """
    current = _load(CURRENT_PATH)
    for dataset, algorithms in current[
        "speedup_batch_over_sequential"
    ].items():
        for algorithm, stats in algorithms.items():
            assert stats["speedup"] >= 1.3, (
                f"{dataset}/{algorithm} batch speedup fell to "
                f"{stats['speedup']:.2f}x"
            )
