"""Fig 1: resident classification error (1 - AUC) per policy and epsilon.

Paper shape: OsdpRR tracks the non-private All-NS baseline closely and
both degrade as the non-sensitive fraction shrinks; ObjDP (all records
treated sensitive) is far worse, approaching the Random baseline (0.5)
at eps = 0.01.
"""

from conftest import BENCH_TIPPERS, write_result

from repro.evaluation.experiments.fig1_classification import Fig1Config, run_fig1
from repro.evaluation.runner import format_table

CONFIG = Fig1Config(
    tippers=BENCH_TIPPERS,
    policies=(99, 90, 75, 50, 25, 10, 1),
    epsilons=(1.0, 0.01),
    cv_folds=5,
)


def test_fig1_classification_error(benchmark):
    out = benchmark.pedantic(run_fig1, args=(CONFIG,), rounds=1, iterations=1)
    for eps in CONFIG.epsilons:
        rows = [
            [f"P{rho:g}"] + [out["errors"][eps][rho][a]
                             for a in ("all_ns", "osdp_rr", "objdp", "random")]
            for rho in CONFIG.policies
        ]
        write_result(
            f"fig1_classification_eps{eps:g}",
            format_table(["policy", "all_ns", "osdp_rr", "objdp", "random"], rows),
        )

    errors_eps1 = out["errors"][1.0]
    # Shape 1: OsdpRR ~ All NS at eps = 1 for permissive policies.
    for rho in (99, 90, 75):
        assert abs(errors_eps1[rho]["osdp_rr"] - errors_eps1[rho]["all_ns"]) < 0.12
    # Shape 2: Random stays at ~0.5 everywhere.
    assert abs(errors_eps1[99]["random"] - 0.5) < 0.1
    # Shape 3: the truthful-release strategies beat ObjDP at eps = 1, P99.
    assert errors_eps1[99]["osdp_rr"] < errors_eps1[99]["objdp"]
    # Shape 4: error grows as the non-sensitive fraction shrinks.
    assert errors_eps1[1]["all_ns"] > errors_eps1[99]["all_ns"]
