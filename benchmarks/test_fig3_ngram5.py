"""Fig 3: MRE of private 5-gram histograms (same shapes as Fig 2)."""

from conftest import BENCH_TIPPERS, write_result
from test_fig2_ngram4 import ALGOS, check_shapes

from repro.evaluation.experiments.fig2_3_ngrams import (
    NGramConfig,
    run_ngram_experiment,
)
from repro.evaluation.runner import format_table

CONFIG = NGramConfig(
    tippers=BENCH_TIPPERS,
    n=5,
    policies=(99, 90, 75, 50, 25, 10, 1),
    epsilons=(1.0, 0.01),
    truncation_sweep=(1, 2, 3, 5),
    n_trials=5,
)


def test_fig3_five_grams(benchmark):
    out = benchmark.pedantic(
        run_ngram_experiment, args=(CONFIG,), rounds=1, iterations=1
    )
    for eps in CONFIG.epsilons:
        rows = [
            [f"P{rho:g}"] + [out["mre"][eps][rho][a] for a in ALGOS]
            for rho in CONFIG.policies
        ]
        write_result(
            f"fig3_ngram5_eps{eps:g}",
            format_table(["policy", *ALGOS], rows),
        )
    check_shapes(out, CONFIG)
    # 5-gram domain is 64x larger than the 4-gram domain.
    assert out["domain_size"] == 64.0**5
