"""Fused count kernel vs the classic unfused construction.

The kernel-tier claim, measured: producing ``(x, x_ns)`` straight from
the value column in one pass (``ColumnarDatabase.fused_counts`` →
``kernels.int_bin_pair``) must beat the unfused three-pass construction
(bin indices materialized, then two ``np.bincount`` calls with a mask
gather in between).  The table — per config: records, bin width,
unfused ms, fused ms, speedup — lands in
``benchmarks/results/kernel_fused.txt`` together with the backend that
served the run (``REPRO_KERNEL`` selects it; numba when available).

Tier-1 keeps only the load-insensitive assertion: both constructions
agree bit for bit on every bench config.  The wall-clock speedup bar is
a ``bench_regression`` test.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import write_result

from repro.data.columnar import ColumnarDatabase
from repro.evaluation.runner import format_table
from repro.mechanisms import kernels
from repro.queries.histogram import IntegerBinning

N_BINS = 4_096
# (records, bin width): width 1 is the dense DPBench shape; width 3
# leaves a ragged final bin, the unfused path's fiddliest case.
CONFIGS = ((500_000, 1), (2_000_000, 1), (2_000_000, 3))
REPEATS = 7


def _workload(n: int):
    rng = np.random.default_rng(11)
    db = ColumnarDatabase(
        {
            "value": rng.integers(0, N_BINS, n),
            "opt_in": rng.integers(0, 2, n).astype(bool),
        }
    )
    ns = rng.random(n) < 0.5
    return db, ns


def _unfused(db, binning, ns):
    idx = binning.bin_indices(db)
    x = np.bincount(idx, minlength=binning.n_bins)
    x_ns = np.bincount(idx[ns], minlength=binning.n_bins)
    return (
        np.ascontiguousarray(x, dtype=np.int64),
        np.ascontiguousarray(x_ns, dtype=np.int64),
    )


def _best_of(fn, *args) -> float:
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        times.append(time.perf_counter() - start)
    return min(times)


def _measure() -> list[list]:
    rows = []
    for n, width in CONFIGS:
        db, ns = _workload(n)
        binning = IntegerBinning("value", 0, N_BINS, width)
        fused = db.fused_counts(binning, ns)
        assert fused is not None  # the bench workload must stay fused
        reference = _unfused(db, binning, ns)
        # timings mean nothing unless the paths agree bit for bit
        assert fused[0].tobytes() == reference[0].tobytes()
        assert fused[1].tobytes() == reference[1].tobytes()
        unfused_s = _best_of(_unfused, db, binning, ns)
        fused_s = _best_of(db.fused_counts, binning, ns)
        rows.append(
            [n, width, unfused_s * 1e3, fused_s * 1e3, unfused_s / fused_s]
        )
    return rows


_ROWS: list[list] | None = None


def _measured() -> list[list]:
    global _ROWS
    if _ROWS is None:
        _ROWS = _measure()
    return _ROWS


def test_fused_counts_bench(benchmark):
    rows = benchmark.pedantic(_measured, rounds=1, iterations=1)
    table = format_table(
        ["records", "width", "unfused ms", "fused ms", "speedup"],
        rows,
        float_format="{:.2f}",
    )
    header = (
        f"fused (x, x_ns) kernel vs unfused bincount construction "
        f"({N_BINS} bins)\n"
        f"kernel backend: {kernels.active_backend()}\n"
    )
    write_result("kernel_fused", header + "\n" + table)
    # Bit-identity was asserted per config inside _measure(); nothing
    # wall-clock-sensitive is allowed to fail tier-1.


@pytest.mark.bench_regression
def test_fused_counts_speedup_bar():
    """The fused pass must hold >=1.2x over the unfused construction.

    Measured ~2x on the numpy backend (one bincount over interleaved
    codes vs index materialization + mask gather + two bincounts); the
    bar sits at 1.2x so machine noise does not flake it, while a
    silently de-fused path (falling back to three passes) still trips.
    Judged on the largest config, where the per-pass cost dominates.
    """
    rows = _measured()
    largest = max(rows, key=lambda r: r[0])
    assert largest[4] >= 1.2, {
        "records": largest[0],
        "width": largest[1],
        "unfused_ms": largest[2],
        "fused_ms": largest[3],
        "speedup": largest[4],
    }
