"""Repo-wide pytest wiring.

The ``bench_regression`` gate compares wall-clock numbers against the
committed baseline; timing comparisons are only meaningful on a quiet,
comparable machine, so those tests are skipped unless explicitly
selected with ``-m bench_regression`` (see docs/TESTING.md).  Tier-1
(``python -m pytest -x -q``) therefore stays deterministic.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(config, items):
    markexpr = config.getoption("-m", default="") or ""
    if "bench_regression" in markexpr:
        return
    skip = pytest.mark.skip(
        reason="timing-comparison gate; run with -m bench_regression"
    )
    for item in items:
        if "bench_regression" in item.keywords:
            item.add_marker(skip)
